//! Quickstart: a windowed count query on a 2-node Slash virtual cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a tiny stream of `(timestamp, key)` records, runs
//! `COUNT(*) GROUP BY key, TUMBLE(1s)` on two simulated nodes whose
//! workers share window state through the RDMA-backed Slash State
//! Backend, and prints the triggered windows.

use std::rc::Rc;

use slash::core::{
    AggSpec, QueryPlan, RecordSchema, RunConfig, SinkResult, SlashCluster, StreamDef,
    WindowAssigner,
};

fn main() {
    // 1. Describe the input: 16-byte records, timestamp at offset 0 and
    //    key at offset 8 (the `plain` layout).
    let schema = RecordSchema::plain(16);

    // 2. Build the query: count records per key over 1-second (1000 ms)
    //    tumbling event-time windows.
    let plan = QueryPlan::Aggregate {
        input: StreamDef::new(schema),
        window: WindowAssigner::Tumbling { size: 1_000 },
        agg: AggSpec::Count,
    };

    // 3. Generate one in-memory partition per worker. Keys overlap across
    //    partitions on purpose: Slash shares state instead of
    //    re-partitioning records.
    let gen = |seed: u64| -> Rc<Vec<u8>> {
        let mut buf = Vec::new();
        for i in 0..5_000u64 {
            let ts = 1 + i; // strictly monotone event time, ms
            let key = (i * 7 + seed) % 5; // five hot keys, on every node
            buf.extend_from_slice(&ts.to_le_bytes());
            buf.extend_from_slice(&key.to_le_bytes());
        }
        Rc::new(buf)
    };

    // 4. Run on a virtual cluster: 2 nodes × 2 workers.
    let mut cfg = RunConfig::new(2, 2);
    cfg.collect_results = true;
    let partitions = vec![gen(0), gen(1), gen(2), gen(3)];
    let report = SlashCluster::run(plan, partitions, cfg);

    // 5. Inspect the results.
    println!(
        "processed {} records in {} of virtual time ({:.1} M records/s)",
        report.records,
        report.processing_time,
        report.throughput() / 1e6
    );
    println!(
        "state deltas moved {} KiB across the simulated fabric",
        report.net_tx_bytes / 1024
    );

    let mut results = report.results.clone();
    results.sort_by_key(|r| match r {
        SinkResult::Agg { window_id, key, .. } => (*window_id, *key),
        SinkResult::Join { window_id, key, .. } => (*window_id, *key),
    });
    println!("\nwindow  key  count");
    let mut total = 0.0;
    for r in &results {
        if let SinkResult::Agg {
            window_id,
            key,
            value,
        } = r
        {
            println!("{window_id:>6}  {key:>3}  {value:>5}");
            total += value;
        }
    }
    assert_eq!(total as u64, report.records, "every record lands in exactly one window");
    println!("\ntotal counted: {total} (matches input — exactly-once triggers)");
}
