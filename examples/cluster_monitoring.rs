//! Cluster Monitoring: mean CPU share per job over 2-second tumbling
//! windows (the paper's CM benchmark on a synthesized Google-trace-shaped
//! stream), with a look inside the epoch protocol.
//!
//! ```sh
//! cargo run --release --example cluster_monitoring
//! ```

use slash::core::{RunConfig, SinkResult, SlashCluster};
use slash::workloads::{cm, GenConfig};

fn main() {
    let nodes = 2;
    let workers = 2;
    let w = cm(&GenConfig::new(nodes * workers, 20_000));
    println!(
        "CM: {} task records (64 B each), 2s tumbling mean CPU per job, Zipf job popularity",
        w.records
    );

    let mut cfg = RunConfig::new(nodes, workers);
    cfg.collect_results = true;
    // A small epoch budget so the protocol synchronizes many times during
    // the run (the paper closes an epoch every 64 MB; this stream is tiny).
    cfg.epoch_bytes = 256 * 1024;
    let report = SlashCluster::run(w.plan, w.partitions, cfg);

    println!(
        "\nprocessed in {} of virtual time ({:.1} M records/s)",
        report.processing_time,
        report.throughput() / 1e6
    );
    println!(
        "emitted {} (window, job) means; {} KiB of delta chunks crossed the fabric",
        report.emitted,
        report.net_tx_bytes / 1024
    );

    // Every mean must be a valid CPU share: the MeanCrdt merges partial
    // (sum, count) pairs from all nodes, so a broken merge would surface
    // as a value outside [0, 1].
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for r in &report.results {
        if let SinkResult::Agg { value, .. } = r {
            min = min.min(*value);
            max = max.max(*value);
            assert!(
                (0.0..=1.0).contains(value),
                "mean CPU share {value} outside [0,1] — CRDT merge bug"
            );
        }
    }
    println!("mean CPU shares span [{min:.4}, {max:.4}] — all inside [0, 1]");
    println!("\ndistributed means == sequential means: the (sum, count) CRDT commutes");
}
