//! Vector clocks for distributed progress tracking (paper §5.1).
//!
//! Every executor tracks, per peer, the greatest event-time watermark it
//! has learned from that peer. Watermark updates piggyback on the epoch
//! protocol's delta chunks, so an entry only advances once the state
//! updates preceding that watermark have been merged — which is exactly
//! the condition that makes triggering on `min()` safe (property P1).

/// A vector of per-executor watermarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// A clock over `n` executors, all at watermark 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Number of executors tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock tracks no executors. Always false in practice —
    /// [`VectorClock::new`] rejects `n == 0` — but derived from `len()`
    /// rather than hardcoded so the pair can never fall out of sync.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Forcibly set executor `node`'s watermark, bypassing the monotonicity
    /// guard of [`VectorClock::update`].
    ///
    /// Fault-injection hook for the `slash-verify` race checker's mutation
    /// tests (it must be able to *cause* a monotonicity violation to prove
    /// the checker detects one). Never call this from protocol code.
    #[doc(hidden)]
    pub fn fault_force_set(&mut self, node: usize, watermark: u64) {
        self.entries[node] = watermark;
    }

    /// The watermark of executor `node`.
    pub fn get(&self, node: usize) -> u64 {
        self.entries[node]
    }

    /// Advance executor `node` to `watermark`. Watermarks are monotone;
    /// stale updates (reordered epochs cannot happen on a FIFO channel,
    /// but defensive) are ignored.
    pub fn update(&mut self, node: usize, watermark: u64) {
        let e = &mut self.entries[node];
        if watermark > *e {
            *e = watermark;
        }
    }

    /// The global low watermark: every executor has progressed at least
    /// this far, and all state updates below it are merged. An empty clock
    /// (unreachable: [`VectorClock::new`] rejects `n == 0`) reports 0, the
    /// conservative "no progress" answer.
    pub fn min(&self) -> u64 {
        self.entries.iter().min().copied().unwrap_or(0)
    }

    /// All per-executor watermarks, in slot order (flight-recorder context).
    pub fn snapshot(&self) -> Vec<u64> {
        self.entries.clone()
    }

    /// Whether an event-time window ending at `end` (exclusive) may
    /// trigger: no executor can still contribute records or state updates
    /// with timestamps below `end`.
    pub fn window_ready(&self, end: u64) -> bool {
        self.min() >= end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_over_entries() {
        let mut vc = VectorClock::new(3);
        assert_eq!(vc.min(), 0);
        vc.update(0, 100);
        vc.update(1, 50);
        assert_eq!(vc.min(), 0, "node 2 still at 0");
        vc.update(2, 70);
        assert_eq!(vc.min(), 50);
        assert_eq!(vc.get(0), 100);
    }

    #[test]
    fn updates_are_monotone() {
        let mut vc = VectorClock::new(1);
        vc.update(0, 10);
        vc.update(0, 5);
        assert_eq!(vc.get(0), 10);
    }

    #[test]
    fn window_ready_semantics() {
        let mut vc = VectorClock::new(2);
        vc.update(0, 1000);
        assert!(!vc.window_ready(1000));
        vc.update(1, 999);
        assert!(!vc.window_ready(1000), "999 < end");
        vc.update(1, 1000);
        assert!(vc.window_ready(1000));
        assert!(vc.window_ready(500));
    }
}
