//! Property-based end-to-end tests: random streams, random window sizes,
//! random cluster shapes — the Slash engine must always match a
//! sequential fold (property P2 at engine level), never double-fire a
//! window, and never lose a record.

use std::collections::HashMap;
use std::rc::Rc;

use proptest::prelude::*;
use slash::core::{
    AggSpec, QueryPlan, RecordSchema, RunConfig, SinkResult, SlashCluster, StreamDef,
    WindowAssigner,
};

/// A randomly generated partition: (ts, key) records with strictly
/// monotone timestamps.
fn partition_strategy(max_records: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    (
        proptest::collection::vec((1u64..50, 0u64..12), 1..max_records),
        1u64..100,
    )
        .prop_map(|(deltas, start)| {
            let mut ts = start;
            deltas
                .into_iter()
                .map(|(dt, key)| {
                    ts += dt;
                    (ts, key)
                })
                .collect()
        })
}

fn encode(partition: &[(u64, u64)]) -> Rc<Vec<u8>> {
    let mut buf = Vec::with_capacity(partition.len() * 16);
    for (ts, key) in partition {
        buf.extend_from_slice(&ts.to_le_bytes());
        buf.extend_from_slice(&key.to_le_bytes());
    }
    Rc::new(buf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_streams_match_sequential_counts(
        parts in proptest::collection::vec(partition_strategy(300), 2..7),
        window in 50u64..2000,
        nodes in 1usize..4,
    ) {
        // Shape the partition list to nodes × workers.
        let nodes = nodes.min(parts.len());
        let workers = parts.len() / nodes;
        let parts = &parts[..nodes * workers];

        // Sequential oracle.
        let mut expected: HashMap<(u64, u64), u64> = HashMap::new();
        for p in parts {
            for (ts, key) in p {
                *expected.entry((ts / window, *key)).or_default() += 1;
            }
        }

        let plan = QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        };
        let mut cfg = RunConfig::new(nodes, workers);
        cfg.collect_results = true;
        cfg.epoch_bytes = 1024; // aggressive epochs
        let report = SlashCluster::run(
            plan,
            parts.iter().map(|p| encode(p)).collect(),
            cfg,
        );

        let mut got: HashMap<(u64, u64), u64> = HashMap::new();
        for r in &report.results {
            if let SinkResult::Agg { window_id, key, value } = r {
                let prev = got.insert((*window_id, *key), *value as u64);
                prop_assert!(prev.is_none(), "double trigger {window_id}/{key}");
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Straggler resilience: one worker gets a much longer stream than the
    /// others. Watermarks must hold results back until the straggler
    /// catches up, and nothing may be lost or double-counted.
    #[test]
    fn stragglers_delay_but_never_corrupt(
        short_len in 10usize..100,
        long_factor in 5usize..20,
        window in 100u64..1000,
    ) {
        let short: Vec<(u64, u64)> = (0..short_len)
            .map(|i| (1 + i as u64 * 7, i as u64 % 4))
            .collect();
        let long: Vec<(u64, u64)> = (0..short_len * long_factor)
            .map(|i| (1 + i as u64 * 3, i as u64 % 4))
            .collect();
        let total = (short.len() + long.len()) as u64;

        let plan = QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: window },
            agg: AggSpec::Count,
        };
        let mut cfg = RunConfig::new(2, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 512;
        let report = SlashCluster::run(plan, vec![encode(&short), encode(&long)], cfg);
        let sum: f64 = report
            .results
            .iter()
            .map(|r| match r {
                SinkResult::Agg { value, .. } => *value,
                _ => 0.0,
            })
            .sum();
        prop_assert_eq!(sum as u64, total);
    }
}
