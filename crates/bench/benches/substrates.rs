//! Micro-benchmarks of the substrate data structures: the LSS, the
//! FASTER-style hash index, CRDT merges, and window assignment. These
//! measure *host* performance of the real data structures (not simulated
//! time) — the state backend does real work in the reproduction, so its
//! efficiency bounds how fast experiments run. Runs on the self-contained
//! `slash_bench::harness` (fully offline).

use slash_bench::harness::{black_box, Harness, Throughput};
use slash_state::crdts::{CounterCrdt, MeanCrdt};
use slash_state::entry::EntryKind;
use slash_state::hash::{hash_key, pack_key};
use slash_state::index::HashIndex;
use slash_state::log::Lss;
use slash_state::Partition;

fn bench_lss_append(h: &mut Harness) {
    for value_size in [8usize, 64, 256] {
        let value = vec![0xABu8; value_size];
        h.bench_batched(&format!("lss_append/{value_size}"), Lss::new, |mut log| {
            for i in 0..1000u64 {
                log.append(
                    i as u128,
                    slash_state::entry::NO_PREV,
                    EntryKind::Fixed,
                    black_box(&value),
                );
            }
            log
        });
    }
}

fn bench_index_probe(h: &mut Harness) {
    for n in [1_000u64, 100_000] {
        // Build a partition with n keys, then measure lookups.
        let mut part = Partition::new(0, CounterCrdt::descriptor());
        for k in 0..n {
            part.rmw(pack_key(1, k), |v| CounterCrdt::add(v, 1));
        }
        let mut k = 0u64;
        h.bench_throughput(
            &format!("index_probe/{n}"),
            Throughput::Elements(1),
            || {
                k = (k + 7919) % n;
                black_box(part.get(pack_key(1, k)));
            },
        );
    }
}

fn bench_rmw_hot_path(h: &mut Harness) {
    // Slash's per-record hot path: hash + index probe + in-place RMW.
    for keys in [256u64, 65_536] {
        let mut part = Partition::new(0, CounterCrdt::descriptor());
        let mut k = 0u64;
        h.bench_throughput(
            &format!("state_rmw/{keys}"),
            Throughput::Elements(1),
            || {
                k = (k + 31) % keys;
                part.rmw(pack_key(1, k), |v| CounterCrdt::add(v, 1));
            },
        );
    }
}

fn bench_crdt_merge(h: &mut Harness) {
    {
        let d = CounterCrdt::descriptor();
        let mut dst = vec![0u8; 8];
        let src = 42u64.to_le_bytes();
        h.bench_throughput("crdt_merge/counter", Throughput::Elements(1), || {
            (d.merge)(black_box(&mut dst), black_box(&src));
        });
    }
    {
        let d = MeanCrdt::descriptor();
        let mut dst = vec![0u8; 16];
        let mut src = vec![0u8; 16];
        MeanCrdt::observe(&mut src, 1.5);
        h.bench_throughput("crdt_merge/mean", Throughput::Elements(1), || {
            (d.merge)(black_box(&mut dst), black_box(&src));
        });
    }
}

fn bench_hashing(h: &mut Harness) {
    let mut k = 0u128;
    h.bench_throughput("hash/hash_key", Throughput::Elements(1), || {
        k = k.wrapping_add(0x9E37_79B9);
        black_box(hash_key(k));
    });
}

fn bench_index_growth(h: &mut Harness) {
    h.bench_batched(
        "index_insert_100k_with_growth",
        || HashIndex::with_capacity(64),
        |mut idx| {
            // Addresses stand in for log positions; keys are implicit
            // in the verify closure (always-miss: all distinct).
            for a in 0..100_000u64 {
                idx.upsert(
                    slash_state::hash::hash_u64(a),
                    a,
                    |_| false,
                    slash_state::hash::hash_u64,
                );
            }
            idx
        },
    );
}

fn main() {
    let mut h = Harness::from_args();
    bench_lss_append(&mut h);
    bench_index_probe(&mut h);
    bench_rmw_hot_path(&mut h);
    bench_crdt_merge(&mut h);
    bench_hashing(&mut h);
    bench_index_growth(&mut h);
}
