#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-core — the Slash stateful executor (paper §4–§5)
//!
//! The engine that ties the substrates together: queries are fused operator
//! pipelines applied eagerly to whatever data flows arrive at a node —
//! **no re-partitioning** — with window state routed into the distributed
//! SSB and merged lazily by the epoch protocol. Each simulated worker
//! thread interleaves RDMA work (pumping delta channels) with compute
//! (processing record batches), which is the cooperative coroutine
//! scheduling of §5.3 expressed as one `slash-desim` process per thread.
//!
//! Performance is *simulated but structural*: workers charge per-record CPU
//! costs from a documented [`cost::CostModel`], state accesses charge cache
//! misses from a working-set model, and every node's workers share a
//! memory-bandwidth link — so the bottlenecks the paper measures (Slash
//! memory-bound, partitioning CPU-bound, skew shrinking the working set)
//! emerge from the same causes rather than being painted on.

pub mod agg;
pub mod cluster;
pub mod cost;
pub mod elastic;
pub mod hotpath;
pub mod join;
pub mod metrics;
pub mod query;
pub mod record;
pub mod recovery;
pub mod sink;
pub mod source;
pub mod split;
pub mod window;
pub mod worker;

pub use agg::AggSpec;
pub use cluster::{spawn_node_workers, RunConfig, RunReport, SlashCluster};
pub use cost::{CacheModel, CostModel, TESTBED_CLOCK_GHZ};
pub use elastic::{
    ClusterTelemetry, ElasticConfig, MigrationCmd, MigrationEvent, RescaleReport, ScaleDirector,
    ScriptedDirector, StaticDirector,
};
pub use hotpath::{BatchOutcome, HotPath};
pub use metrics::{CostCategory, EngineMetrics};
pub use query::{JoinSide, QueryPlan, StreamDef};
pub use record::RecordSchema;
pub use recovery::{results_digest, RecoveryAction, RecoveryEvent, RecoveryReport};
pub use sink::{Sink, SinkResult};
pub use source::MemorySource;
pub use split::{
    ForwardFabric, HeatPolicy, HeatSplitDirector, SplitDirector, SplitReport, SplitRunConfig,
    SplitTelemetry, StaticSplitDirector,
};
pub use window::{WindowAssigner, WindowMemo};
pub use worker::{NodeShared, SlashWorker};
