//! `slash-trace-check` — validate a Chrome trace-event JSON file.
//!
//! ```text
//! slash-trace-check FILE
//! ```
//!
//! Checks, without any JSON library, that the trace an example or harness
//! emitted is actually loadable and well-behaved:
//!
//! 1. the document is structurally well-formed JSON — balanced brackets
//!    of matching kinds, valid string escapes, no stray bytes after the
//!    closing brace (a char-level tokenizer, not a regex);
//! 2. it contains a non-empty `traceEvents` array;
//! 3. the `"ts"` values appear in monotone non-decreasing file order,
//!    which `slash_obs::export::chrome_trace_json` guarantees by sorting
//!    on `(virtual time, sequence)`.
//!
//! Exit codes: 0 valid, 1 invalid, 2 usage/IO error.

use std::process::ExitCode;

/// A structural defect found while scanning the document.
#[derive(Debug)]
struct Defect(String);

/// Parse the decimal-microsecond literal starting at `bytes[i]` (e.g.
/// `12.345`) into integer nanoseconds; returns `(ns, next_index)`.
fn parse_ts(bytes: &[u8], mut i: usize) -> Result<(u64, usize), Defect> {
    let start = i;
    let mut us: u64 = 0;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        us = us * 10 + u64::from(bytes[i] - b'0');
        i += 1;
    }
    if i == start {
        return Err(Defect(format!("byte {start}: \"ts\" value is not a number")));
    }
    let mut ns = us * 1_000;
    if i < bytes.len() && bytes[i] == b'.' {
        i += 1;
        let mut scale = 100u64;
        let frac_start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            ns += u64::from(bytes[i] - b'0') * scale;
            scale /= 10;
            i += 1;
            if scale == 0 {
                break;
            }
        }
        if i == frac_start {
            return Err(Defect(format!("byte {start}: \"ts\" has a bare decimal point")));
        }
    }
    Ok((ns, i))
}

/// Scan the whole document once: validate structure and collect the
/// `"ts"` values (outside strings, in file order) and whether a
/// non-empty `traceEvents` array was seen.
fn check(doc: &str) -> Result<(usize, Vec<u64>), Defect> {
    let bytes = doc.as_bytes();
    let mut stack: Vec<u8> = Vec::new();
    let mut seen_root = false;
    let mut events = 0usize;
    let mut ts_values = Vec::new();
    // Depth of the `traceEvents` array, once entered; events are the
    // elements directly inside it.
    let mut trace_events_depth: Option<usize> = None;
    // Set when the string just closed was a key we care about.
    let mut last_string: Option<&str> = None;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'"' => {
                let start = i + 1;
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Defect(format!("byte {start}: unterminated string")));
                    }
                    match bytes[i] {
                        b'"' => break,
                        b'\\' => {
                            let esc = bytes.get(i + 1).copied();
                            match esc {
                                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                    i += 2
                                }
                                Some(b'u') => {
                                    let hex = bytes.get(i + 2..i + 6);
                                    let ok = hex.is_some_and(|h| {
                                        h.iter().all(u8::is_ascii_hexdigit)
                                    });
                                    if !ok {
                                        return Err(Defect(format!(
                                            "byte {i}: bad \\u escape"
                                        )));
                                    }
                                    i += 6;
                                }
                                _ => {
                                    return Err(Defect(format!("byte {i}: bad escape")));
                                }
                            }
                        }
                        c if c < 0x20 => {
                            return Err(Defect(format!(
                                "byte {i}: raw control character {c:#04x} inside string"
                            )));
                        }
                        _ => i += 1,
                    }
                }
                last_string = std::str::from_utf8(&bytes[start..i]).ok();
                i += 1;
                continue;
            }
            b'{' | b'[' => {
                if stack.is_empty() && seen_root {
                    return Err(Defect(format!("byte {i}: content after root value")));
                }
                if b == b'[' && last_string == Some("traceEvents") && stack.len() == 1 {
                    trace_events_depth = Some(stack.len() + 1);
                }
                if b == b'{' && trace_events_depth == Some(stack.len()) {
                    events += 1;
                }
                stack.push(b);
                seen_root = true;
            }
            b'}' => {
                if stack.pop() != Some(b'{') {
                    return Err(Defect(format!("byte {i}: unbalanced `}}`")));
                }
            }
            b']' => {
                if stack.pop() != Some(b'[') {
                    return Err(Defect(format!("byte {i}: unbalanced `]`")));
                }
                if trace_events_depth == Some(stack.len() + 1) {
                    trace_events_depth = None;
                }
            }
            b':' => {
                if last_string == Some("ts") {
                    let mut j = i + 1;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    let (ns, next) = parse_ts(bytes, j)?;
                    ts_values.push(ns);
                    i = next;
                    last_string = None;
                    continue;
                }
            }
            b' ' | b'\t' | b'\n' | b'\r' | b',' => {}
            _ => {
                // Numbers, literals, signs: structural validity only, so
                // accept the value characters JSON allows.
                let ok = b.is_ascii_digit()
                    || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                    || matches!(b, b't' | b'r' | b'u' | b'f' | b'a' | b'l' | b's' | b'n');
                if !ok {
                    return Err(Defect(format!("byte {i}: unexpected byte {b:#04x}")));
                }
                if stack.is_empty() && !seen_root {
                    return Err(Defect(format!("byte {i}: root is not an object")));
                }
            }
        }
        // Any token other than whitespace or the key's own colon
        // invalidates the pending key string.
        if !matches!(b, b':' | b' ' | b'\t' | b'\n' | b'\r') {
            last_string = None;
        }
        i += 1;
    }
    if !stack.is_empty() {
        return Err(Defect(format!("{} unclosed bracket(s) at end of file", stack.len())));
    }
    if !seen_root {
        return Err(Defect("empty document".to_string()));
    }
    Ok((events, ts_values))
}

fn run(path: &str) -> Result<String, Defect> {
    let doc = std::fs::read_to_string(path)
        .map_err(|e| Defect(format!("cannot read {path}: {e}")))?;
    let (events, ts) = check(&doc)?;
    if events == 0 {
        return Err(Defect("traceEvents array is missing or empty".to_string()));
    }
    for w in ts.windows(2) {
        if w[1] < w[0] {
            return Err(Defect(format!(
                "\"ts\" not monotone: {}ns after {}ns",
                w[1], w[0]
            )));
        }
    }
    Ok(format!(
        "slash-trace-check: {path}: {events} event(s), {} ts value(s) monotone, JSON well-formed — PASS",
        ts.len()
    ))
}

fn main() -> ExitCode {
    let mut paths: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--help" | "-h" => {
                println!("usage: slash-trace-check FILE...");
                return ExitCode::SUCCESS;
            }
            _ => paths.push(a),
        }
    }
    if paths.is_empty() {
        eprintln!("slash-trace-check: expected at least one trace file");
        return ExitCode::from(2);
    }
    for p in &paths {
        match run(p) {
            Ok(msg) => println!("{msg}"),
            Err(Defect(d)) => {
                eprintln!("slash-trace-check: {p}: FAIL — {d}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_real_export() {
        let obs = slash_obs::Obs::enabled(64);
        for i in 0..10u64 {
            obs.instant(
                slash_obs::Cat::Verb,
                "write",
                0,
                1,
                slash_desim::SimTime::from_nanos(i * 700),
                &[("seq", i)],
            );
        }
        let json = obs.chrome_trace_json();
        let (events, ts) = check(&json).expect("valid");
        assert_eq!(events, 10);
        assert_eq!(ts.len(), 10);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[1], 700);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(check("{\"traceEvents\":[").is_err(), "unclosed");
        assert!(check("{\"a\":\"b").is_err(), "unterminated string");
        assert!(check("{\"a\":1}]").is_err(), "unbalanced close");
        assert!(check("{\"a\":\"\\q\"}").is_err(), "bad escape");
        let (events, _) = check("{\"traceEvents\":[]}").expect("well-formed");
        assert_eq!(events, 0, "empty traceEvents counts zero events");
    }

    #[test]
    fn ts_parsing_handles_fractional_microseconds() {
        let doc = "{\"traceEvents\":[{\"ts\":1.001},{\"ts\":2.5},{\"ts\":13}]}";
        let (events, ts) = check(doc).expect("valid");
        assert_eq!(events, 3);
        assert_eq!(ts, vec![1_001, 2_500, 13_000]);
    }

    #[test]
    fn non_monotone_ts_detected_by_run_order() {
        let doc = "{\"traceEvents\":[{\"ts\":5.000},{\"ts\":4.999}]}";
        let (_, ts) = check(doc).expect("well-formed");
        assert!(ts.windows(2).any(|w| w[1] < w[0]));
    }
}
