//! HyperLogLog CRDT — approximate count-distinct window state.
//!
//! An extension beyond the paper's evaluated operators that exercises its
//! CRDT framework (§5.1): HyperLogLog registers form a join-semilattice
//! under element-wise max, so per-node sketches merge in any order and
//! any grouping to the same result — exactly the property the epoch
//! protocol needs. Useful for streaming queries like "distinct users per
//! campaign per window".
//!
//! Layout: 256 one-byte registers (m = 2⁸), giving a standard error of
//! about `1.04 / √256 ≈ 6.5 %`.

use crate::descriptor::{StateDescriptor, ValueKind};

/// Full-avalanche 64-bit finalizer (SplitMix64). HyperLogLog needs every
/// output bit unbiased; the engine's FxHash-style mix is too weak for
/// sequential keys here.
#[inline]
fn hll_hash(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Number of registers.
const M: usize = 256;
/// Register index bits.
const P: u32 = 8;

/// HyperLogLog sketch over `u64` items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HllCrdt;

impl HllCrdt {
    /// Encoded size: one byte per register.
    pub const SIZE: usize = M;

    /// Fold one item into the sketch.
    #[inline]
    pub fn observe(value: &mut [u8], item: u64) {
        let h = hll_hash(item);
        // Register index from the top bits (better distributed for the
        // multiply-based hash); rank from the remaining bits.
        let idx = (h >> (64 - P)) as usize;
        let rest = h << P;
        let rank = (rest.leading_zeros() + 1).min(64 - P + 1) as u8;
        if rank > value[idx] {
            value[idx] = rank;
        }
    }

    /// Estimate the number of distinct items folded in.
    pub fn estimate(value: &[u8]) -> f64 {
        debug_assert_eq!(value.len(), M);
        let m = M as f64;
        let mut sum = 0.0;
        let mut zeros = 0u32;
        for &r in value {
            sum += 1.0 / (1u64 << r.min(63)) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        // Bias-corrected harmonic mean (alpha for m = 256).
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // Small-range correction: linear counting.
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    fn init(value: &mut [u8]) {
        value[..M].fill(0);
    }

    fn merge(dst: &mut [u8], src: &[u8]) {
        for (d, s) in dst.iter_mut().zip(src.iter()) {
            if *s > *d {
                *d = *s;
            }
        }
    }

    /// Backend descriptor.
    pub fn descriptor() -> StateDescriptor {
        StateDescriptor {
            kind: ValueKind::Fixed { size: Self::SIZE },
            init: Self::init,
            merge: Self::merge,
            combinable: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(items: impl Iterator<Item = u64>) -> Vec<u8> {
        let mut v = vec![0u8; HllCrdt::SIZE];
        for x in items {
            HllCrdt::observe(&mut v, x);
        }
        v
    }

    #[test]
    fn estimates_within_error_bound() {
        for &n in &[100u64, 1_000, 50_000] {
            let v = sketch(0..n);
            let est = HllCrdt::estimate(&v);
            let err = (est - n as f64).abs() / n as f64;
            assert!(err < 0.15, "n={n} est={est:.0} err={err:.2}");
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let once = sketch(0..1000);
        let thrice = sketch((0..1000).chain(0..1000).chain(0..1000));
        assert_eq!(once, thrice, "sketch is duplicate-insensitive");
    }

    #[test]
    fn merge_is_union() {
        let a = sketch(0..500);
        let b = sketch(250..1000);
        let mut merged = a.clone();
        HllCrdt::merge(&mut merged, &b);
        let direct = sketch(0..1000);
        assert_eq!(merged, direct, "merge(a,b) == sketch(a ∪ b)");
    }

    #[test]
    fn semilattice_laws() {
        let a = sketch(0..300);
        let b = sketch(200..600);
        let c = sketch(500..900);
        // Commutative.
        let mut ab = a.clone();
        HllCrdt::merge(&mut ab, &b);
        let mut ba = b.clone();
        HllCrdt::merge(&mut ba, &a);
        assert_eq!(ab, ba);
        // Associative.
        let mut ab_c = ab.clone();
        HllCrdt::merge(&mut ab_c, &c);
        let mut bc = b.clone();
        HllCrdt::merge(&mut bc, &c);
        let mut a_bc = a.clone();
        HllCrdt::merge(&mut a_bc, &bc);
        assert_eq!(ab_c, a_bc);
        // Idempotent (a true join-semilattice, unlike counters).
        let mut aa = a.clone();
        HllCrdt::merge(&mut aa, &a);
        assert_eq!(aa, a);
        // Identity.
        let mut a0 = a.clone();
        let mut zero = vec![0u8; HllCrdt::SIZE];
        (HllCrdt::descriptor().init)(&mut zero);
        HllCrdt::merge(&mut a0, &zero);
        assert_eq!(a0, a);
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let v = vec![0u8; HllCrdt::SIZE];
        assert_eq!(HllCrdt::estimate(&v), 0.0);
    }
}
