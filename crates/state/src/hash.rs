//! State keys and fast hashing.
//!
//! Window state is keyed by `(window_id, group_key)` packed into a
//! [`StateKey`] (`u128`). Hashing uses the FxHash multiply-rotate mix — the
//! perf-book-recommended choice for integer keys where HashDoS is not a
//! concern (all keys here are produced by the engine, not by untrusted
//! input).

/// A state key: high 64 bits identify the window, low 64 bits the group.
pub type StateKey = u128;

/// Pack a `(window_id, group_key)` pair into a [`StateKey`].
#[inline]
pub fn pack_key(window_id: u64, group_key: u64) -> StateKey {
    ((window_id as u128) << 64) | group_key as u128
}

/// Unpack a [`StateKey`] into `(window_id, group_key)`.
#[inline]
pub fn unpack_key(key: StateKey) -> (u64, u64) {
    ((key >> 64) as u64, key as u64)
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style mix of one 64-bit word.
#[inline]
pub fn mix_u64(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(SEED)
}

/// Hash a 64-bit key.
#[inline]
pub fn hash_u64(v: u64) -> u64 {
    // A single multiply-xor-shift is enough for engine-generated keys but
    // distributes low bits poorly; finish with a xorshift.
    let h = mix_u64(0, v);
    h ^ (h >> 32)
}

/// Hash a full state key.
#[inline]
pub fn hash_key(key: StateKey) -> u64 {
    let h = mix_u64(mix_u64(0, key as u64), (key >> 64) as u64);
    h ^ (h >> 32)
}

/// The SSB partition a key belongs to, among `n` partitions.
///
/// Partitioning hashes only the *group* half of the state key, so every
/// window of one group key lands on the same leader. This is what lets a
/// leader stitch multi-bucket windows (sliding-window slices, session
/// buckets) without cross-node reads at trigger time.
#[inline]
pub fn partition_of(key: StateKey, n: usize) -> usize {
    debug_assert!(n > 0);
    // Multiply-shift partitioning over the high bits of the group hash.
    ((hash_u64(key as u64) as u128 * n as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let k = pack_key(0xABCD_EF01, 42);
        assert_eq!(unpack_key(k), (0xABCD_EF01, 42));
        assert_eq!(unpack_key(pack_key(u64::MAX, u64::MAX)), (u64::MAX, u64::MAX));
    }

    #[test]
    fn hash_spreads_sequential_keys() {
        // Sequential group keys (the common case: dense key spaces in YSB)
        // must land in different buckets.
        let mut low_bits = std::collections::HashSet::new();
        for g in 0..1024u64 {
            low_bits.insert(hash_key(pack_key(1, g)) & 0xFFF);
        }
        assert!(low_bits.len() > 900, "only {} distinct", low_bits.len());
    }

    #[test]
    fn partition_of_is_balanced() {
        let n = 8;
        let mut counts = vec![0usize; n];
        for g in 0..80_000u64 {
            counts[partition_of(pack_key(3, g), n)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 1_000.0,
                "imbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn partition_of_is_stable_across_calls() {
        for g in 0..100 {
            let k = pack_key(9, g);
            assert_eq!(partition_of(k, 5), partition_of(k, 5));
        }
    }

    #[test]
    fn all_windows_of_a_key_share_a_leader() {
        for g in 0..200u64 {
            let p0 = partition_of(pack_key(0, g), 7);
            for w in 1..50u64 {
                assert_eq!(partition_of(pack_key(w, g), 7), p0);
            }
        }
    }

    #[test]
    fn single_partition_always_zero() {
        for g in 0..100 {
            assert_eq!(partition_of(pack_key(1, g), 1), 0);
        }
    }
}
