//! Benches of the engine building blocks: RDMA channel transfer, the epoch
//! protocol, and the end-to-end virtual cluster at small scale. Runs on the
//! self-contained `slash_bench::harness` (no external deps, fully offline).

use std::rc::Rc;

use slash_bench::harness::{Harness, Throughput};
use slash_core::{
    AggSpec, QueryPlan, RecordSchema, RunConfig, SlashCluster, StreamDef, WindowAssigner,
};
use slash_desim::Sim;
use slash_net::{create_channel, ChannelConfig, MsgFlags};
use slash_rdma::{Fabric, FabricConfig};
use slash_state::backend::{build_cluster, SsbConfig};
use slash_state::{pack_key, CounterCrdt};

fn bench_channel_transfer(h: &mut Harness) {
    let payload = vec![7u8; 4096];
    h.bench_throughput(
        "rdma_channel/send_recv_64_buffers",
        Throughput::Bytes(4096 * 64),
        || {
            let mut sim = Sim::new();
            let fabric = Fabric::new(FabricConfig::default());
            let a = fabric.add_node();
            let bb = fabric.add_node();
            let (mut tx, mut rx) = create_channel(&fabric, a, bb, ChannelConfig::default());
            let mut sent = 0;
            let mut got = 0;
            while got < 64 {
                while sent < 64 && tx.try_send(&mut sim, MsgFlags::DATA, &payload).unwrap() {
                    sent += 1;
                }
                sim.run();
                while rx.try_recv(&mut sim).unwrap().is_some() {
                    got += 1;
                }
                sim.run();
            }
        },
    );
}

fn bench_epoch_protocol(h: &mut Harness) {
    h.bench_throughput(
        "epoch_protocol/update_ship_merge_1k_keys_3_nodes",
        Throughput::Elements(1000),
        || {
            let mut sim = Sim::new();
            let fabric = Fabric::new(FabricConfig::default());
            let nodes = fabric.add_nodes(3);
            let cfg = SsbConfig::new(3);
            let mut ssb = build_cluster(&fabric, &nodes, CounterCrdt::descriptor(), cfg);
            for node in ssb.iter_mut() {
                for k in 0..1000u64 {
                    node.rmw(pack_key(1, k), |v| CounterCrdt::add(v, 1));
                }
                node.note_progress(100);
                node.close_epoch(&mut sim).unwrap();
            }
            for _ in 0..1000 {
                let mut progress = 0;
                for node in ssb.iter_mut() {
                    let (s, m) = node.pump(&mut sim).unwrap();
                    progress += s + m;
                }
                let pending = sim.pending_events() > 0;
                sim.run();
                if progress == 0 && !pending {
                    break;
                }
            }
        },
    );
}

fn bench_e2e_cluster(h: &mut Harness) {
    let gen = |n: u64| -> Rc<Vec<u8>> {
        let mut buf = Vec::with_capacity((n * 16) as usize);
        for i in 0..n {
            buf.extend_from_slice(&(1 + i).to_le_bytes());
            buf.extend_from_slice(&(i % 64).to_le_bytes());
        }
        Rc::new(buf)
    };
    h.bench_throughput(
        "e2e/slash_2nodes_2workers_40k_records",
        Throughput::Elements(4 * 10_000),
        || {
            let plan = QueryPlan::Aggregate {
                input: StreamDef::new(RecordSchema::plain(16)),
                window: WindowAssigner::Tumbling { size: 1000 },
                agg: AggSpec::Count,
            };
            let parts: Vec<Rc<Vec<u8>>> = (0..4).map(|_| gen(10_000)).collect();
            SlashCluster::run(plan, parts, RunConfig::new(2, 2));
        },
    );
}

fn main() {
    let mut h = Harness::from_args();
    bench_channel_transfer(&mut h);
    bench_epoch_protocol(&mut h);
    bench_e2e_cluster(&mut h);
}
