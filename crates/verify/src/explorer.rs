//! Bounded exhaustive schedule exploration: a DFS model checker over the
//! simulator's same-instant choice points.
//!
//! Where [`crate::race`] *samples* the schedule space (FIFO, LIFO, seeded
//! permutations), this module *enumerates* it. `slash-desim`'s explore mode
//! ([`slash_desim::Sim::with_schedule`]) turns a run into a replayable
//! sequence of branch decisions — at every virtual instant where two or
//! more events tie, the next entry of the choice vector picks which fires.
//! The explorer performs an iterative depth-first search over those choice
//! vectors: each leaf is one complete scenario run, each internal node one
//! branch point, and backtracking is just re-running the scenario with a
//! different prefix (one run per leaf; the simulator is cheap and exactly
//! reproducible, so re-execution replaces state snapshotting).
//!
//! Two reductions bound the tree without losing bugs:
//!
//! - **Sleep sets** (Godefroid): after exploring alternative `a` at a
//!   branch point, sibling subtrees need not re-explore orders that only
//!   differ by commuting `a` across *independent* events. Independence is
//!   the conservative relation of [`EventLabel::independent`]: only
//!   deliveries on channels with disjoint endpoint node sets commute;
//!   anything touching shared state is dependent and always explored both
//!   ways. Sleep sets are reset at instant boundaries (propagating them
//!   further would require labeling every singleton event too); resets
//!   only *weaken* pruning, never soundness.
//! - **State-digest deduplication**: scenarios install a state-digest hook
//!   ([`slash_desim::Sim::set_state_digest`]); a branch point whose
//!   (instant, digest, enabled-label-set) was already expanded under an
//!   equal-or-smaller sleep set is pruned — two converged prefixes have
//!   identical futures. Dedup is only active when the scenario provides a
//!   digest, and the completeness gate (`pruned == 0`) is only claimed on
//!   runs where both reductions stayed idle.
//!
//! On violation the failing choice vector is greedily **minimized** to a
//! shortest reproducing schedule: a one-line repro instead of a seed.

use std::collections::{HashMap, HashSet};

use slash_desim::{ChoicePoint, EventLabel};

use crate::race::{Invariant, Outcome};

/// Result of one complete scenario run under an explicit choice schedule.
pub struct ScheduleRun {
    /// Invariant verdicts and fingerprint of the run.
    pub outcome: Outcome,
    /// The recorded branch-point trace (see [`ChoicePoint`]).
    pub trace: Vec<ChoicePoint>,
}

/// Exploration budget. Exceeding any bound sets
/// [`Coverage::frontier_truncated`] and stops the search; the caller is
/// expected to fall back to the random sweep for the rest of the space.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum distinct branch-point states expanded (DFS frame pushes).
    pub max_states: usize,
    /// Maximum complete schedules run (leaves enumerated).
    pub max_schedules: usize,
    /// Maximum branch depth frames are created at.
    pub max_depth: usize,
    /// Enable state-digest deduplication. On by default; the literal
    /// full-enumeration gate turns it off so every distinct schedule is
    /// actually run rather than pruned at a provably-converged state.
    pub state_dedup: bool,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: 4096,
            max_schedules: 4096,
            max_depth: 256,
            state_dedup: true,
        }
    }
}

/// Coverage accounting of one exhaustive exploration.
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    /// Complete schedules enumerated (leaves run, excluding minimization
    /// replays).
    pub schedules_enumerated: usize,
    /// Distinct schedule fingerprints among the enumerated runs. Equal to
    /// `schedules_enumerated` when the DFS did no redundant work.
    pub distinct_fingerprints: usize,
    /// Branch-point states expanded (frames pushed).
    pub states_expanded: usize,
    /// Alternatives skipped by sleep-set reduction.
    pub pruned_sleep: usize,
    /// Branch points skipped because an equal state was already expanded.
    pub pruned_dedup: usize,
    /// Deepest branch point seen.
    pub max_depth_seen: usize,
    /// Extra runs spent minimizing counterexamples.
    pub minimization_runs: usize,
    /// The search stopped on a budget bound before draining the frontier.
    pub frontier_truncated: bool,
}

impl Coverage {
    /// Whether every schedule in the space was either enumerated or pruned
    /// by a sound reduction.
    pub fn complete(&self) -> bool {
        !self.frontier_truncated
    }

    /// Whether the enumeration was *literal*: every distinct schedule was
    /// actually run — nothing truncated, nothing pruned, no duplicates.
    /// This is the strongest claim, and the gate the 2-node FIFO scenario
    /// must pass.
    pub fn literal_full_enumeration(&self) -> bool {
        self.complete()
            && self.pruned_sleep == 0
            && self.pruned_dedup == 0
            && self.schedules_enumerated == self.distinct_fingerprints
    }
}

/// A violation found by the explorer, with its reproducing schedules.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// Which invariant failed.
    pub invariant: Invariant,
    /// What exactly went wrong.
    pub detail: String,
    /// The full choice sequence of the run that first exposed it.
    pub first_schedule: Vec<u32>,
    /// The greedily-minimized reproducing choice sequence (trailing FIFO
    /// defaults stripped; never longer than `first_schedule`).
    pub minimized: Vec<u32>,
    /// Flight-recorder dumps captured on the minimized run (or the first
    /// exposing run if minimization was disabled).
    pub dumps: Vec<String>,
}

/// Aggregated result of one exhaustive exploration.
#[derive(Debug)]
pub struct ExhaustiveReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Coverage accounting.
    pub coverage: Coverage,
    /// Distinct violations found, each with a minimized repro schedule.
    pub counterexamples: Vec<CounterExample>,
}

impl ExhaustiveReport {
    /// Whether every explored schedule upheld every invariant.
    pub fn clean(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Human-readable summary.
    pub fn render_human(&self) -> String {
        let c = &self.coverage;
        let mut out = format!(
            "{}: {} schedules enumerated ({} distinct), {} states expanded, \
             pruned {} sleep / {} dedup, depth ≤ {}{} — {}\n",
            self.scenario,
            c.schedules_enumerated,
            c.distinct_fingerprints,
            c.states_expanded,
            c.pruned_sleep,
            c.pruned_dedup,
            c.max_depth_seen,
            if c.frontier_truncated {
                " [frontier TRUNCATED at budget]"
            } else {
                " [complete]"
            },
            if self.clean() { "all invariants hold" } else { "VIOLATIONS" }
        );
        for ce in self.counterexamples.iter().take(8) {
            out.push_str(&format!(
                "  [{}] {}\n    first exposed by {} choices; minimized repro: {:?}\n",
                ce.invariant.name(),
                ce.detail,
                ce.first_schedule.len(),
                ce.minimized,
            ));
        }
        if self.counterexamples.len() > 8 {
            out.push_str(&format!(
                "  … and {} more counterexample(s)\n",
                self.counterexamples.len() - 8
            ));
        }
        out
    }
}

/// A DFS frame: one branch point reached under `prefix`, with the
/// alternatives still to explore. Event identities (`seq`) are stable for a
/// fixed prefix — the simulator is deterministic — so sleep entries recorded
/// from one run remain valid when siblings re-execute the same prefix.
struct Frame {
    prefix: Vec<u32>,
    at_ns: u64,
    enabled: Vec<(u64, EventLabel)>,
    next_alt: usize,
    /// Alternative indices already explored at this frame (first the one
    /// the discovering run chose, then every sibling the DFS finished).
    done: Vec<usize>,
    /// Slept events: exploring them here would only commute already
    /// explored independent events.
    sleep: Vec<(u64, EventLabel)>,
}

/// Sleep set a child inherits after firing `chosen` at a frame with
/// `sleep ∪ done_events`: only entries independent of the fired event
/// survive, and nothing survives an instant boundary.
fn child_sleep(
    sleep: &[(u64, EventLabel)],
    done_events: &[(u64, EventLabel)],
    chosen: EventLabel,
    parent_at: u64,
    child_at: u64,
) -> Vec<(u64, EventLabel)> {
    if child_at != parent_at {
        return Vec::new();
    }
    sleep
        .iter()
        .chain(done_events.iter())
        .filter(|(_, l)| l.independent(chosen))
        .cloned()
        .collect()
}

/// Dedup signature of a branch-point state: virtual instant, scenario
/// digest, and the multiset of enabled labels. Only meaningful when the
/// scenario installed a digest hook (digest ≠ 0).
fn state_key(cp: &ChoicePoint) -> u64 {
    let mut labels: Vec<u64> = cp.enabled.iter().map(|e| e.label.raw()).collect();
    labels.sort_unstable();
    let mut h = crate::scenarios::fold_digest(cp.at.as_nanos(), cp.digest);
    for l in labels {
        h = crate::scenarios::fold_digest(h, l);
    }
    crate::scenarios::fold_digest(h, cp.enabled.len() as u64)
}

/// Sorted label multiset of a sleep set, for the subset check stored dedup
/// entries are compared with.
fn sleep_sig(sleep: &[(u64, EventLabel)]) -> Vec<u64> {
    let mut v: Vec<u64> = sleep.iter().map(|(_, l)| l.raw()).collect();
    v.sort_unstable();
    v
}

/// Multiset inclusion over sorted vectors.
fn subset_of(small: &[u64], big: &[u64]) -> bool {
    let mut i = 0;
    for &x in big {
        if i < small.len() && small[i] == x {
            i += 1;
        }
    }
    i == small.len()
}

fn strip_trailing_zeros(v: &[u32]) -> Vec<u32> {
    let end = v.iter().rposition(|&c| c != 0).map_or(0, |p| p + 1);
    v[..end].to_vec()
}

/// Greedily minimize a violating choice sequence: repeatedly drop the
/// trailing choice and zero individual non-default choices, keeping every
/// shrink that still reproduces (`reproduces` must re-run the scenario and
/// check for the same violation). Terminates at a local minimum; the
/// result is never longer than the stripped input.
pub fn minimize(first: &[u32], mut reproduces: impl FnMut(&[u32]) -> bool) -> Vec<u32> {
    let mut cur = strip_trailing_zeros(first);
    loop {
        let mut changed = false;
        while !cur.is_empty() {
            let cand = strip_trailing_zeros(&cur[..cur.len() - 1]);
            if reproduces(&cand) {
                cur = cand;
                changed = true;
            } else {
                break;
            }
        }
        for i in 0..cur.len() {
            if cur[i] != 0 {
                let mut cand = cur.clone();
                cand[i] = 0;
                let cand = strip_trailing_zeros(&cand);
                if reproduces(&cand) {
                    cur = cand;
                    changed = true;
                    break; // indices shifted; restart the scan
                }
            }
        }
        if !changed {
            return cur;
        }
    }
}

/// Exhaustively explore a scenario's same-instant schedule space.
///
/// `run` executes the scenario under a choice prefix (all decisions past
/// the prefix default to FIFO) and returns the outcome plus the recorded
/// branch trace. The DFS enumerates every reachable choice vector up to
/// `budget`, pruning with sleep sets and (when digests are present) state
/// deduplication. Each distinct violation is minimized to a shortest
/// reproducing schedule when `do_minimize` is set.
pub fn explore_exhaustive(
    scenario: &'static str,
    budget: Budget,
    do_minimize: bool,
    mut run: impl FnMut(&[u32]) -> ScheduleRun,
) -> ExhaustiveReport {
    let mut cov = Coverage::default();
    let mut fps: HashSet<u64> = HashSet::new();
    let mut seen_violations: HashSet<(&'static str, String)> = HashSet::new();
    let mut counterexamples: Vec<CounterExample> = Vec::new();
    // state key → sleep-set signatures it was expanded under.
    let mut expanded: HashMap<u64, Vec<Vec<u64>>> = HashMap::new();
    let mut stack: Vec<Frame> = Vec::new();

    // Process one completed leaf: count it, collect + minimize any new
    // violations. Returns the trace for frame construction.
    let process = |prefix: &[u32],
                       sr: ScheduleRun,
                       cov: &mut Coverage,
                       fps: &mut HashSet<u64>,
                       seen: &mut HashSet<(&'static str, String)>,
                       ces: &mut Vec<CounterExample>,
                       run: &mut dyn FnMut(&[u32]) -> ScheduleRun|
     -> Vec<ChoicePoint> {
        cov.schedules_enumerated += 1;
        fps.insert(sr.outcome.fingerprint);
        cov.max_depth_seen = cov.max_depth_seen.max(sr.trace.len());
        let first_schedule: Vec<u32> = sr.trace.iter().map(|c| c.chosen).collect();
        for (invariant, detail) in &sr.outcome.violations {
            if !seen.insert((invariant.name(), detail.clone())) {
                continue;
            }
            let inv = *invariant;
            let minimized = if do_minimize {
                minimize(&first_schedule, |cand| {
                    cov.minimization_runs += 1;
                    // A shrink counts only if the same invariant fires;
                    // the detail string may legitimately differ (counters
                    // in it depend on the schedule).
                    run(cand).outcome.violations.iter().any(|(i, _)| *i == inv)
                })
            } else {
                strip_trailing_zeros(&first_schedule)
            };
            // Capture dumps from the minimized repro so the flight
            // recorder shows the shortest failing run.
            let dumps = if do_minimize {
                cov.minimization_runs += 1;
                run(&minimized).outcome.dumps
            } else {
                sr.outcome.dumps.clone()
            };
            ces.push(CounterExample {
                invariant: inv,
                detail: detail.clone(),
                first_schedule: first_schedule.clone(),
                minimized,
                dumps,
            });
        }
        // `prefix` is a true prefix of the recorded schedule by
        // construction; nothing else to reconcile.
        debug_assert!(prefix.len() <= sr.trace.len() || sr.trace.is_empty());
        sr.trace
    };

    // Create DFS frames for every branch point of a fresh run at depths
    // > from_depth, threading the sleep set down the path.
    #[allow(clippy::too_many_arguments)]
    fn push_frames(
        stack: &mut Vec<Frame>,
        trace: &[ChoicePoint],
        from_depth: usize,
        mut sleep: Vec<(u64, EventLabel)>,
        mut prev_at: Option<u64>,
        budget: &Budget,
        cov: &mut Coverage,
        expanded: &mut HashMap<u64, Vec<Vec<u64>>>,
    ) {
        for (d, cp) in trace.iter().enumerate().skip(from_depth) {
            let at = cp.at.as_nanos();
            if let Some(p) = prev_at {
                // Entering a new frame along the path: the sleep set was
                // already filtered against the previous frame's chosen
                // event by the caller / previous iteration; an instant
                // change resets it.
                if at != p {
                    sleep.clear();
                }
            }
            let enabled: Vec<(u64, EventLabel)> =
                cp.enabled.iter().map(|e| (e.seq, e.label)).collect();
            let chosen_idx = cp.chosen as usize;
            let (chosen_seq, chosen_label) = enabled[chosen_idx];
            // Dedup: prune the whole frame if this state was already
            // expanded under a sleep set no larger than ours (it explored
            // a superset of what we would).
            let mut deduped = false;
            if budget.state_dedup && cp.digest != 0 {
                let key = state_key(cp);
                let sig = sleep_sig(&sleep);
                let entry = expanded.entry(key).or_default();
                if entry.iter().any(|prev| subset_of(prev, &sig)) {
                    deduped = true;
                    cov.pruned_dedup += 1;
                } else {
                    entry.push(sig);
                }
            }
            if !deduped {
                if d >= budget.max_depth || cov.states_expanded >= budget.max_states {
                    cov.frontier_truncated = true;
                } else {
                    cov.states_expanded += 1;
                    stack.push(Frame {
                        prefix: trace[..d].iter().map(|c| c.chosen).collect(),
                        at_ns: at,
                        enabled: enabled.clone(),
                        next_alt: 0,
                        done: vec![chosen_idx],
                        sleep: sleep.clone(),
                    });
                }
            } else {
                // An equal state already explored a superset of the
                // orderings reachable from here; everything deeper on this
                // path is redundant.
                break;
            }
            if sleep.iter().any(|&(s, _)| s == chosen_seq) {
                // The run's default extension fired a slept event: the
                // rest of this path only commutes independent events of
                // already-explored runs. The frame above still exposes the
                // non-slept alternatives; walk no deeper.
                cov.pruned_sleep += 1;
                break;
            }
            // Propagate the sleep set past this frame's chosen event for
            // the next frame down the path (first exploration here, so no
            // sibling `done` events join it yet).
            sleep.retain(|(_, l)| l.independent(chosen_label));
            prev_at = Some(at);
        }
    }

    // Seed: the all-FIFO run.
    let seed = run(&[]);
    let trace = process(
        &[],
        seed,
        &mut cov,
        &mut fps,
        &mut seen_violations,
        &mut counterexamples,
        &mut run,
    );
    push_frames(
        &mut stack,
        &trace,
        0,
        Vec::new(),
        None,
        &budget,
        &mut cov,
        &mut expanded,
    );

    'dfs: while let Some(top) = stack.last() {
        // Find the next unexplored, unslept alternative of the top frame.
        let mut j = top.next_alt;
        let pick = loop {
            if j >= top.enabled.len() {
                break None;
            }
            if top.done.contains(&j) {
                j += 1;
                continue;
            }
            let seq = top.enabled[j].0;
            if top.sleep.iter().any(|&(s, _)| s == seq) {
                cov.pruned_sleep += 1;
                j += 1;
                continue;
            }
            break Some(j);
        };
        let Some(j) = pick else {
            stack.pop();
            continue;
        };
        {
            let top = stack.last_mut().expect("frame still on stack");
            top.next_alt = j + 1;
        }
        if cov.schedules_enumerated >= budget.max_schedules {
            cov.frontier_truncated = true;
            break 'dfs;
        }
        let (prefix, depth, sleep_for_child, parent_at) = {
            let top = stack.last().expect("frame still on stack");
            let mut prefix = top.prefix.clone();
            prefix.push(j as u32);
            let done_events: Vec<(u64, EventLabel)> =
                top.done.iter().map(|&d| top.enabled[d]).collect();
            let chosen_label = top.enabled[j].1;
            let sleep =
                child_sleep(&top.sleep, &done_events, chosen_label, top.at_ns, top.at_ns);
            (prefix, top.prefix.len(), sleep, top.at_ns)
        };
        let sr = run(&prefix);
        debug_assert!(
            sr.trace.len() > depth && sr.trace[depth].chosen as usize == j,
            "replayed run must branch where the frame says it does"
        );
        let trace = process(
            &prefix,
            sr,
            &mut cov,
            &mut fps,
            &mut seen_violations,
            &mut counterexamples,
            &mut run,
        );
        {
            let top = stack.last_mut().expect("frame still on stack");
            top.done.push(j);
        }
        push_frames(
            &mut stack,
            &trace,
            depth + 1,
            sleep_for_child,
            Some(parent_at),
            &budget,
            &mut cov,
            &mut expanded,
        );
    }
    if !stack.is_empty() {
        cov.frontier_truncated = true;
    }

    cov.distinct_fingerprints = fps.len();
    ExhaustiveReport {
        scenario,
        coverage: cov,
        counterexamples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    use slash_desim::{Sim, SimTime};

    /// Toy scenario: fire `labels` at one instant, record the order, call
    /// `violates` on it. Exercises the real desim explore mode end to end.
    fn toy(
        labels: &[EventLabel],
        choices: &[u32],
        violates: &dyn Fn(&[usize]) -> bool,
    ) -> ScheduleRun {
        let mut sim = Sim::with_schedule(choices);
        let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &l) in labels.iter().enumerate() {
            let o = Rc::clone(&order);
            sim.schedule_at_labeled(SimTime::from_nanos(10), l, move |_| {
                o.borrow_mut().push(i);
            });
        }
        sim.run();
        let fired = order.borrow().clone();
        let violations = if violates(&fired) {
            vec![(Invariant::Fifo, "planted".to_string())]
        } else {
            Vec::new()
        };
        ScheduleRun {
            outcome: Outcome {
                fingerprint: sim.schedule_fingerprint(),
                violations,
                dumps: Vec::new(),
            },
            trace: sim.take_choice_trace(),
        }
    }

    #[test]
    fn dependent_events_enumerate_all_permutations() {
        // Three node-labeled (mutually dependent) events: the full 3! = 6
        // interleavings, each a distinct fingerprint, nothing pruned.
        let labels = [EventLabel::node(0), EventLabel::node(1), EventLabel::node(2)];
        let rep = explore_exhaustive("toy-dep", Budget::default(), false, |c| {
            toy(&labels, c, &|_| false)
        });
        assert_eq!(rep.coverage.schedules_enumerated, 6);
        assert_eq!(rep.coverage.distinct_fingerprints, 6);
        assert_eq!(rep.coverage.pruned_sleep, 0);
        assert_eq!(rep.coverage.pruned_dedup, 0);
        assert!(rep.coverage.literal_full_enumeration());
        assert!(rep.clean());
    }

    #[test]
    fn sleep_sets_prune_commuting_orders() {
        // Three mutually independent channel deliveries (disjoint
        // endpoints): sleep sets skip part of the 6-leaf space.
        let labels = [
            EventLabel::channel(0, 1),
            EventLabel::channel(2, 3),
            EventLabel::channel(4, 5),
        ];
        let rep = explore_exhaustive("toy-indep", Budget::default(), false, |c| {
            toy(&labels, c, &|_| false)
        });
        assert!(rep.coverage.complete());
        assert!(
            rep.coverage.schedules_enumerated < 6,
            "sleep sets must prune some of the 6 interleavings, got {}",
            rep.coverage.schedules_enumerated
        );
        assert!(rep.coverage.pruned_sleep > 0);
        assert!(rep.clean());
    }

    #[test]
    fn mixed_independence_still_finds_order_sensitive_violation() {
        // Two independent deliveries plus one dependent tick; the planted
        // bug fires only when event 1 goes first. Reduction must not lose
        // it, and the repro must minimize below the first exposing trace.
        let labels = [
            EventLabel::channel(0, 1),
            EventLabel::channel(2, 3),
            EventLabel::node(7),
        ];
        let rep = explore_exhaustive("toy-bug", Budget::default(), true, |c| {
            toy(&labels, c, &|order| order.first() == Some(&1))
        });
        assert_eq!(rep.counterexamples.len(), 1);
        let ce = &rep.counterexamples[0];
        assert_eq!(ce.invariant, Invariant::Fifo);
        // Replaying the minimized schedule must still reproduce.
        let replay = toy(&labels, &ce.minimized, &|order| order.first() == Some(&1));
        assert!(!replay.outcome.violations.is_empty());
        assert!(
            ce.minimized.len() < ce.first_schedule.len(),
            "minimized {:?} vs first {:?}",
            ce.minimized,
            ce.first_schedule
        );
    }

    #[test]
    fn digest_dedup_prunes_converged_prefixes() {
        // a/b at t=10 both bump a counter (commuting in state), then c/d
        // branch at t=20. Without dedup: 2×2 = 4 leaves. With a state
        // digest, the t=20 branch point after the b-first prefix is
        // recognized as already expanded.
        let run = |choices: &[u32]| -> ScheduleRun {
            let mut sim = Sim::with_schedule(choices);
            let counter = Rc::new(RefCell::new(0u64));
            let digest_src = Rc::clone(&counter);
            sim.set_state_digest(move || *digest_src.borrow() + 1);
            let order: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..2usize {
                let c = Rc::clone(&counter);
                let o = Rc::clone(&order);
                sim.schedule_at_labeled(
                    SimTime::from_nanos(10),
                    EventLabel::node(i as u32),
                    move |_| {
                        *c.borrow_mut() += 1;
                        o.borrow_mut().push(i);
                    },
                );
            }
            for i in 2..4usize {
                let o = Rc::clone(&order);
                sim.schedule_at_labeled(
                    SimTime::from_nanos(20),
                    EventLabel::node(i as u32),
                    move |_| o.borrow_mut().push(i),
                );
            }
            sim.run();
            ScheduleRun {
                outcome: Outcome {
                    fingerprint: sim.schedule_fingerprint(),
                    violations: Vec::new(),
                    dumps: Vec::new(),
                },
                trace: sim.take_choice_trace(),
            }
        };
        let rep = explore_exhaustive("toy-dedup", Budget::default(), false, run);
        assert!(rep.coverage.complete());
        assert_eq!(rep.coverage.pruned_dedup, 1);
        assert_eq!(rep.coverage.schedules_enumerated, 3, "4 leaves minus the deduped subtree");
    }

    #[test]
    fn budget_exhaustion_reports_truncation() {
        let labels: Vec<EventLabel> = (0..5).map(EventLabel::node).collect();
        let rep = explore_exhaustive(
            "toy-budget",
            Budget {
                max_schedules: 10,
                ..Budget::default()
            },
            false,
            |c| toy(&labels, c, &|_| false),
        );
        assert!(rep.coverage.frontier_truncated);
        assert!(!rep.coverage.complete());
        assert!(rep.coverage.schedules_enumerated <= 10);
        assert!(rep.render_human().contains("TRUNCATED"));
    }

    #[test]
    fn minimize_shrinks_to_fixpoint() {
        // Reproduces iff a 2 survives anywhere in the schedule.
        let min = minimize(&[0, 3, 0, 2, 0], |c| c.contains(&2));
        assert_eq!(min, vec![0, 0, 0, 2]);
        // Always reproducible → collapses to the empty (all-FIFO) schedule.
        assert_eq!(minimize(&[1, 0, 2], |_| true), Vec::<u32>::new());
        // Never reproducible is degenerate but must terminate unchanged.
        assert_eq!(minimize(&[1, 2], |_| false), vec![1, 2]);
    }
}

