//! Exporters: Chrome trace-event JSON (Perfetto-loadable) and the
//! plain-text `slash-top` summary table.
//!
//! Both exporters are hand-rolled (zero dependencies) and fully
//! deterministic: events are sorted by `(ts, seq)`, timestamps are
//! formatted with integer arithmetic only, and registry iteration order
//! is fixed by `BTreeMap`. Same seed, same bytes.

use crate::registry::MetricsRegistry;
use crate::trace::TraceEvent;

/// Format nanoseconds as microseconds with three decimals (`"12.345"`),
/// using integer math only so the output is platform-independent.
fn us3(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Escape a string for a JSON literal (names here are static identifiers,
/// but labels may contain arbitrary bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_event_json(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":\"");
    out.push_str(&json_escape(ev.name));
    out.push_str("\",\"cat\":\"");
    out.push_str(ev.cat.name());
    if ev.dur > 0 {
        out.push_str("\",\"ph\":\"X\",\"ts\":");
        out.push_str(&us3(ev.ts.as_nanos()));
        out.push_str(",\"dur\":");
        out.push_str(&us3(ev.dur));
    } else {
        out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
        out.push_str(&us3(ev.ts.as_nanos()));
    }
    out.push_str(",\"pid\":");
    out.push_str(&ev.pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&ev.tid.to_string());
    out.push_str(",\"args\":{");
    for (i, (k, v)) in ev.args().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
}

/// Render events as a Chrome trace-event JSON document.
///
/// Events are emitted sorted by `(virtual time, sequence)` so timestamps
/// are monotone non-decreasing — `slash-trace-check` relies on this.
/// Load the file at <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.ts, e.seq));
    let mut out = String::with_capacity(128 + events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    for (i, ev) in sorted.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        push_event_json(&mut out, ev);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":\"slash-obs\"}}\n");
    out
}

/// Quantiles reported by the `slash-top` table.
pub const QUANTILES: [(f64, &str); 5] = [
    (0.5, "p50"),
    (0.9, "p90"),
    (0.99, "p99"),
    (0.999, "p99.9"),
    (0.9999, "p99.99"),
];

/// Heat entries shown per sketch in the `slash-top` table.
const HEAT_TOP_SHOWN: usize = 8;

/// Render the registry as a plain-text `slash-top` summary table.
pub fn top_summary(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("== slash-top (virtual time) ==\n");
    if reg.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    let counters: Vec<_> = reg.counters().collect();
    if !counters.is_empty() {
        out.push_str("counters:\n");
        for (name, label, v) in counters {
            out.push_str(&format!("  {name:<28} {label:<20} {v:>16}\n"));
        }
    }
    let gauges: Vec<_> = reg.gauges().collect();
    if !gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, label, v) in gauges {
            out.push_str(&format!("  {name:<28} {label:<20} {v:>16.3}\n"));
        }
    }
    let hists: Vec<_> = reg.hists().collect();
    if !hists.is_empty() {
        out.push_str(&format!(
            "histograms (ns):\n  {:<28} {:<20} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "name", "label", "count", "p50", "p90", "p99", "p99.9", "p99.99", "max"
        ));
        for (name, label, h) in hists {
            out.push_str(&format!("  {name:<28} {label:<20} {:>9}", h.count()));
            for (q, _) in QUANTILES {
                let v = h.quantile(q).unwrap_or(0);
                out.push_str(&format!(" {v:>10}"));
            }
            out.push_str(&format!(" {:>10}\n", h.max().unwrap_or(0)));
        }
    }
    push_migrations(&mut out, reg);
    let heats: Vec<_> = reg.heats().collect();
    if !heats.is_empty() {
        out.push_str("heat top-k:\n");
        for (name, label, sketch) in heats {
            out.push_str(&format!(
                "  {name:<28} {label:<20} total={} tracked={}\n",
                sketch.total(),
                sketch.len()
            ));
            for e in sketch.top(HEAT_TOP_SHOWN) {
                out.push_str(&format!(
                    "    key={:<20} count={:<12} err={}\n",
                    e.key, e.count, e.err
                ));
            }
        }
    }
    out
}

/// Decode the elastic-rescaling telemetry — `partition_owner` /
/// `migration_phase` gauges per partition, the `migrations` counter and
/// the `migration_stall_ns` histogram — into a per-partition ownership
/// table. Silent when no elastic run was recorded.
fn push_migrations(out: &mut String, reg: &MetricsRegistry) {
    let part_of = |label: &str| label.strip_prefix("part=")?.parse::<usize>().ok();
    let mut rows: std::collections::BTreeMap<usize, (Option<u64>, Option<u64>)> =
        std::collections::BTreeMap::new();
    for (name, label, v) in reg.gauges() {
        let Some(p) = part_of(label) else { continue };
        let row = rows.entry(p).or_default();
        match name {
            "partition_owner" => row.0 = Some(v as u64),
            "migration_phase" => row.1 = Some(v as u64),
            _ => {}
        }
    }
    if rows.is_empty() {
        return;
    }
    out.push_str("migrations (elastic):\n");
    out.push_str(&format!("  {:<10} {:<10} {}\n", "part", "owner", "phase"));
    for (p, (owner, phase)) in &rows {
        let owner = owner.map(|o| o.to_string()).unwrap_or_else(|| "?".into());
        let phase = match phase {
            Some(1) => "warmup",
            Some(2) => "cutover",
            Some(3) => "reconnect",
            _ => "serving",
        };
        out.push_str(&format!("  {p:<10} {owner:<10} {phase}\n"));
    }
    let committed = reg
        .counters()
        .find(|(name, _, _)| *name == "migrations")
        .map(|(_, _, v)| v)
        .unwrap_or(0);
    let stall = reg
        .hists()
        .find(|(name, _, _)| *name == "migration_stall_ns")
        .map(|(_, _, h)| (h.quantile(0.5).unwrap_or(0), h.max().unwrap_or(0)));
    match stall {
        Some((p50, max)) => out.push_str(&format!(
            "  committed={committed} cutover stall ns: p50={p50} max={max}\n"
        )),
        None => out.push_str(&format!("  committed={committed}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Cat, TraceRing};
    use slash_desim::SimTime;

    #[test]
    fn json_is_sorted_and_integer_formatted() {
        let mut ring = TraceRing::new(16);
        ring.record(
            Cat::Verb,
            "write",
            0,
            1,
            SimTime::from_nanos(2_500),
            0,
            &[("seq", 1)],
        );
        ring.record(
            Cat::Operator,
            "batch",
            0,
            0,
            SimTime::from_nanos(1_001),
            1_499,
            &[("records", 512)],
        );
        let json = chrome_trace_json(&ring.snapshot());
        let batch = json.find("\"batch\"").unwrap();
        let write = json.find("\"write\"").unwrap();
        assert!(batch < write, "events must be sorted by virtual time");
        assert!(json.contains("\"ts\":1.001"));
        assert!(json.contains("\"dur\":1.499"));
        assert!(json.contains("\"ts\":2.500"));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn summary_decodes_migration_telemetry() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("partition_owner", "part=0", 0.0);
        reg.gauge_set("migration_phase", "part=0", 0.0);
        reg.gauge_set("partition_owner", "part=2", 3.0);
        reg.gauge_set("migration_phase", "part=2", 2.0);
        reg.counter_add("migrations", "cluster", 5);
        reg.hist_record("migration_stall_ns", "cluster", 200_000);
        let top = top_summary(&reg);
        assert!(top.contains("migrations (elastic):"), "{top}");
        let p0 = top.lines().find(|l| l.trim().starts_with("0 ")).unwrap();
        assert!(p0.contains("serving"), "{p0}");
        let p2 = top.lines().find(|l| l.trim().starts_with("2 ")).unwrap();
        assert!(p2.contains('3') && p2.contains("cutover"), "{p2}");
        assert!(top.contains("committed=5"), "{top}");
        assert!(top.contains("max=200000"), "{top}");
        // A registry without elastic gauges stays free of the section.
        let mut plain = MetricsRegistry::new();
        plain.counter_add("records", "node=0", 1);
        assert!(!top_summary(&plain).contains("migrations (elastic)"));
    }

    #[test]
    fn summary_lists_quantiles() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("records", "node=0", 42);
        for v in 1..=1000u64 {
            reg.hist_record("record_latency_ns", "node=0", v);
        }
        let top = top_summary(&reg);
        assert!(top.contains("slash-top"));
        assert!(top.contains("records"));
        assert!(top.contains("p99.9"));
        assert!(top.contains("record_latency_ns"));
    }
}
