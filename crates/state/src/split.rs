//! Hot-key splitting: per-replica sub-keys folded back at window close.
//!
//! A hot group key turns one partition leader into a serialization point:
//! every node's updates for that key funnel into a single primary entry,
//! and — with keyed ingress — every *record* for that key funnels into a
//! single node. Splitting breaks the key into `n` **sub-keys**, one per
//! replica (logical node), so each node accumulates its share of the
//! updates under its own salted key. Because the states are exact CRDTs
//! (the same [`StateDescriptor::combinable`] gate the write combiner
//! uses), regrouping updates across sub-keys is lossless: at window close
//! the leader folds every sub-key of a `(window, key)` back into the
//! canonical key with the descriptor's `merge` and emits one result, so
//! exactness falls out of CRDT associativity plus the existing
//! `(window, key)` trigger/dedup machinery.
//!
//! **Salts preserve the leader.** A sub-key is a 63-bit salted group key
//! with the top bit ([`SUB_KEY_TAG`]) set, searched deterministically so
//! that [`partition_of`] maps it to the *same* partition as the canonical
//! key. Sub-key deltas therefore ride the normal epoch-merge path to the
//! normal leader — no new shipping protocol, no new recovery state: a
//! sub-key entry is ordinary partition state that checkpoints, promotes,
//! and replays exactly like any other entry.
//!
//! The ledger is deliberately a plain value (no shared interior
//! mutability): every node carries an identical copy, and the split
//! driver activates a key on all copies in the same simulation step.
//! Exactness never depends on the copies agreeing — the fold merges
//! whatever canonical and sub-key entries exist — only result *labeling*
//! does, and only on the leader that triggers the window.
//!
//! [`StateDescriptor::combinable`]: crate::descriptor::StateDescriptor::combinable
//! [`partition_of`]: crate::hash::partition_of

use std::collections::BTreeMap;

use crate::hash::{mix_u64, pack_key, partition_of};

/// Top bit of a group key, reserved for sub-keys. Keys with this bit set
/// cannot be split (the engine's benchmark keys are all far below 2^63).
pub const SUB_KEY_TAG: u64 = 1 << 63;

/// Bounded salt search: with `n` equally likely partitions the expected
/// number of candidates until one lands on the canonical leader is `n`;
/// 64·n misses in a row is astronomically unlikely, and a key that
/// exhausts the budget is simply not split (a performance decision, never
/// a correctness one).
const SALT_SEARCH_BUDGET: u64 = 64;

/// The split ledger: which canonical keys are split, and the two-way
/// mapping between canonical keys and their per-replica sub-keys.
#[derive(Debug, Clone, Default)]
pub struct SplitLedger {
    nodes: usize,
    version: u64,
    /// Canonical group key → sub-key per replica (index = replica).
    canon: BTreeMap<u64, Vec<u64>>,
    /// Sub-key → (canonical group key, replica).
    subs: BTreeMap<u64, (u64, usize)>,
}

impl SplitLedger {
    /// An empty ledger for a cluster of `nodes` replicas.
    pub fn new(nodes: usize) -> Self {
        SplitLedger {
            nodes: nodes.max(1),
            version: 0,
            canon: BTreeMap::new(),
            subs: BTreeMap::new(),
        }
    }

    /// Replica count the sub-keys are derived for.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Monotone change counter: bumps on every activation, so per-batch
    /// caches (the hot path's salt map) can refresh with one compare.
    /// `0` means "never had a split" — the hot path's fast path.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether no key is split.
    pub fn is_empty(&self) -> bool {
        self.canon.is_empty()
    }

    /// Whether `gk` is an active split canonical key.
    pub fn is_split(&self, gk: u64) -> bool {
        self.canon.contains_key(&gk)
    }

    /// The active split canonical keys, ascending.
    pub fn split_keys(&self) -> Vec<u64> {
        self.canon.keys().copied().collect()
    }

    /// Resolve a sub-key to `(canonical key, replica)`.
    pub fn canonical_of(&self, sub: u64) -> Option<(u64, usize)> {
        self.subs.get(&sub).copied()
    }

    /// The sub-key replica `replica` writes for canonical `gk`, if split.
    pub fn sub_for(&self, gk: u64, replica: usize) -> Option<u64> {
        self.canon
            .get(&gk)
            .and_then(|subs| subs.get(replica).copied())
    }

    /// `(canonical, sub)` pairs for one replica, ascending by canonical —
    /// the flat map the hot path binary-searches per record.
    pub fn pairs_for(&self, replica: usize) -> Vec<(u64, u64)> {
        self.canon
            .iter()
            .filter_map(|(&gk, subs)| subs.get(replica).map(|&s| (gk, s)))
            .collect()
    }

    /// Activate splitting for `gk`: derive one leader-preserving sub-key
    /// per replica. Returns `false` (and changes nothing) if the key is
    /// already split, carries the sub-key tag, or the salt search fails
    /// for any replica — splitting is always optional, so rejection is a
    /// no-op rather than an error.
    pub fn split(&mut self, gk: u64) -> bool {
        if gk & SUB_KEY_TAG != 0 || self.canon.contains_key(&gk) {
            return false;
        }
        let leader = partition_of(pack_key(0, gk), self.nodes);
        let mut derived = Vec::with_capacity(self.nodes);
        for replica in 0..self.nodes {
            let mut found = None;
            for salt in 0..SALT_SEARCH_BUDGET * self.nodes as u64 {
                let cand = SUB_KEY_TAG
                    | (mix_u64(mix_u64(replica as u64 + 1, gk), salt) & !SUB_KEY_TAG);
                if partition_of(pack_key(0, cand), self.nodes) == leader
                    && !self.subs.contains_key(&cand)
                    && !derived.contains(&cand)
                {
                    found = Some(cand);
                    break;
                }
            }
            match found {
                Some(sub) => derived.push(sub),
                None => return false,
            }
        }
        for (replica, &sub) in derived.iter().enumerate() {
            self.subs.insert(sub, (gk, replica));
        }
        self.canon.insert(gk, derived);
        self.version += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::unpack_key;

    #[test]
    fn sub_keys_preserve_the_leader_and_are_distinct() {
        for nodes in [2usize, 3, 5, 8, 12] {
            let mut ledger = SplitLedger::new(nodes);
            for gk in [0u64, 7, 12345, 9_999_999] {
                assert!(ledger.split(gk), "split {gk} over {nodes}");
                let leader = partition_of(pack_key(0, gk), nodes);
                let mut seen = std::collections::HashSet::new();
                for r in 0..nodes {
                    let sub = ledger.sub_for(gk, r).unwrap();
                    assert_ne!(sub & SUB_KEY_TAG, 0, "sub-keys carry the tag");
                    assert_eq!(
                        partition_of(pack_key(0, sub), nodes),
                        leader,
                        "sub-key must route to the canonical leader"
                    );
                    assert!(seen.insert(sub), "sub-keys are distinct");
                    assert_eq!(ledger.canonical_of(sub), Some((gk, r)));
                }
            }
        }
    }

    #[test]
    fn all_windows_of_a_sub_key_share_the_canonical_leader() {
        let nodes = 6;
        let mut ledger = SplitLedger::new(nodes);
        assert!(ledger.split(42));
        for r in 0..nodes {
            let sub = ledger.sub_for(42, r).unwrap();
            for w in 0..20u64 {
                assert_eq!(
                    partition_of(pack_key(w, sub), nodes),
                    partition_of(pack_key(w, 42), nodes)
                );
            }
        }
    }

    #[test]
    fn activation_is_deterministic_across_copies() {
        let mk = || {
            let mut l = SplitLedger::new(4);
            l.split(3);
            l.split(1000);
            l.pairs_for(2)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn rejects_tagged_and_duplicate_keys() {
        let mut ledger = SplitLedger::new(3);
        assert!(!ledger.split(SUB_KEY_TAG | 5), "tagged keys can't split");
        assert!(ledger.split(5));
        assert!(!ledger.split(5), "double activation is a no-op");
        assert_eq!(ledger.version(), 1);
        assert_eq!(ledger.split_keys(), vec![5]);
    }

    #[test]
    fn version_bumps_per_activation_and_pairs_sorted() {
        let mut ledger = SplitLedger::new(2);
        assert_eq!(ledger.version(), 0);
        ledger.split(9);
        ledger.split(2);
        assert_eq!(ledger.version(), 2);
        let pairs = ledger.pairs_for(0);
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].0 < pairs[1].0, "ascending by canonical key");
    }

    #[test]
    fn unpack_of_sub_key_keeps_window_half() {
        let mut ledger = SplitLedger::new(2);
        ledger.split(77);
        let sub = ledger.sub_for(77, 1).unwrap();
        let (wid, gk) = unpack_key(pack_key(12, sub));
        assert_eq!(wid, 12);
        assert_eq!(gk, sub);
    }
}
