//! The simulation driver.

use std::cell::RefCell;
use std::rc::Rc;

use crate::clock::SimTime;
use crate::event::{EventKind, EventLabel, EventQueue, TieBreak};
use crate::process::{ProcId, ProcState, Process, Step};

struct ProcEntry {
    proc_: Rc<RefCell<dyn Process>>,
    state: ProcState,
    name: String,
}

/// Aggregate kernel statistics (useful in tests and reports).
#[derive(Debug, Default, Clone, Copy)]
pub struct SimStats {
    /// Total events fired.
    pub events: u64,
    /// Total process steps executed.
    pub steps: u64,
    /// Wake events dropped as stale.
    pub stale_wakes: u64,
}

/// One same-instant event as seen at a branch point of an explored run.
///
/// `seq` identifies the event within *this* run (sequence numbers are
/// deterministic for a fixed choice prefix); `label` carries the structural
/// information the explorer's independence relation works on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnabledEvent {
    /// Schedule sequence number of the event in this run.
    pub seq: u64,
    /// Structural label (channel / node / none).
    pub label: EventLabel,
}

/// A recorded same-instant scheduling decision from an explored run.
///
/// Whenever two or more events tie at the earliest virtual time, the
/// simulator consults the replay schedule (or defaults to FIFO), fires the
/// chosen event, and records the full enabled set plus the choice here.
/// The sequence of `chosen` indices is a complete, replayable encoding of
/// the schedule: replaying it through [`Sim::with_schedule`] reproduces the
/// run exactly.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    /// Virtual time of the tie.
    pub at: SimTime,
    /// Every event enabled at this instant, in schedule (seq) order.
    pub enabled: Vec<EnabledEvent>,
    /// Index into `enabled` of the event that fired.
    pub chosen: u32,
    /// Scenario state digest at the branch point (0 if no hook installed).
    pub digest: u64,
}

/// Explore-mode state: replay schedule, recorded trace, digest hook.
struct ExploreState {
    schedule: Vec<u32>,
    cursor: usize,
    trace: Vec<ChoicePoint>,
    digest: Option<Box<dyn Fn() -> u64>>,
}

/// A deterministic discrete-event simulator.
///
/// See the crate docs for the execution model. A `Sim` is single-threaded
/// and `!Send`; shared simulation state lives behind `Rc<RefCell<...>>`.
pub struct Sim {
    now: SimTime,
    queue: EventQueue,
    procs: Vec<ProcEntry>,
    stepping: Option<ProcId>,
    self_wake: bool,
    stats: SimStats,
    fingerprint: u64,
    explore: Option<ExploreState>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at virtual time zero.
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: EventQueue::default(),
            procs: Vec::new(),
            stepping: None,
            self_wake: false,
            stats: SimStats::default(),
            fingerprint: 0,
            explore: None,
        }
    }

    /// Create a simulation in *explore mode* with an explicit replay
    /// schedule.
    ///
    /// Whenever two or more events tie at the earliest virtual time, the
    /// next entry of `choices` picks which of them fires (an index into the
    /// enabled set in schedule order, clamped to the set size); once the
    /// schedule is exhausted every remaining tie falls back to FIFO
    /// (index 0). Every decision — enabled set, choice, optional state
    /// digest — is recorded and retrievable via [`Sim::take_choice_trace`],
    /// so a run is fully replayable from its own trace. An empty `choices`
    /// reproduces exactly the [`TieBreak::Fifo`] schedule (and its
    /// fingerprint).
    pub fn with_schedule(choices: &[u32]) -> Self {
        let mut sim = Sim::new();
        sim.explore = Some(ExploreState {
            schedule: choices.to_vec(),
            cursor: 0,
            trace: Vec::new(),
            digest: None,
        });
        sim
    }

    /// Whether this simulation is in explore mode (see [`Sim::with_schedule`]).
    pub fn exploring(&self) -> bool {
        self.explore.is_some()
    }

    /// Install a scenario state-digest hook for explore mode.
    ///
    /// The hook is called at every branch point (before the chosen event
    /// fires) and its value recorded in the [`ChoicePoint`]; the explorer
    /// uses it to deduplicate converged prefixes. Captured state must be
    /// read through `Rc<RefCell<...>>` handles and the hook must not mutate
    /// anything. No-op outside explore mode.
    pub fn set_state_digest(&mut self, f: impl Fn() -> u64 + 'static) {
        if let Some(ex) = self.explore.as_mut() {
            ex.digest = Some(Box::new(f));
        }
    }

    /// Take the recorded branch-point trace of an explored run (empty
    /// outside explore mode).
    pub fn take_choice_trace(&mut self) -> Vec<ChoicePoint> {
        self.explore
            .as_mut()
            .map(|ex| std::mem::take(&mut ex.trace))
            .unwrap_or_default()
    }

    /// Create a simulation whose same-timestamp events fire in the order
    /// chosen by `policy` (the default is [`TieBreak::Fifo`]).
    ///
    /// Used by the race checker to explore many legal interleavings of the
    /// same scenario: the physics (event timestamps) are unchanged, only the
    /// order among genuinely concurrent events varies.
    pub fn with_tie_break(policy: TieBreak) -> Self {
        let mut sim = Sim::new();
        sim.queue.set_policy(policy);
        sim
    }

    /// Change the tie-break policy for events scheduled from now on.
    /// Already-queued events keep the order they were given at scheduling
    /// time, so this is safe to call mid-run.
    pub fn set_tie_break(&mut self, policy: TieBreak) {
        self.queue.set_policy(policy);
    }

    /// The active tie-break policy.
    pub fn tie_break(&self) -> TieBreak {
        self.queue.policy()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Kernel statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// A hash of the exact order in which events have fired so far.
    ///
    /// Two runs have the same fingerprint iff they popped the same
    /// `(time, schedule-seq)` stream — i.e. executed the same schedule. The
    /// race checker uses this to count how many *distinct* interleavings a
    /// sweep of tie-break seeds actually explored.
    pub fn schedule_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Register a process and schedule its first step at the current time.
    pub fn spawn<P: Process + 'static>(&mut self, p: P) -> ProcId {
        self.spawn_at(self.now, p)
    }

    /// Register a process and schedule its first step at `at`.
    pub fn spawn_at<P: Process + 'static>(&mut self, at: SimTime, p: P) -> ProcId {
        debug_assert!(at >= self.now, "cannot spawn in the past");
        let pid = ProcId(self.procs.len() as u32);
        let name = p.name().to_owned();
        self.procs.push(ProcEntry {
            proc_: Rc::new(RefCell::new(p)),
            state: ProcState::Scheduled,

            name,
        });
        self.queue.push(at, EventKind::Wake(pid));
        pid
    }

    /// Register a process in the parked state; it will only run once
    /// something calls [`Sim::wake`] on it.
    pub fn spawn_parked<P: Process + 'static>(&mut self, p: P) -> ProcId {
        let pid = ProcId(self.procs.len() as u32);
        let name = p.name().to_owned();
        self.procs.push(ProcEntry {
            proc_: Rc::new(RefCell::new(p)),
            state: ProcState::Parked,

            name,
        });
        pid
    }

    /// Wake a parked process at the current virtual time.
    ///
    /// Waking a process that is busy (yielded) or already has a pending wake
    /// is a no-op: the process re-polls its inputs whenever it next steps.
    /// Waking the process that is *currently stepping* defers the wake until
    /// the step finishes, so a step that both parks and triggers its own
    /// wake condition does not lose the wakeup.
    pub fn wake(&mut self, pid: ProcId) {
        if self.stepping == Some(pid) {
            self.self_wake = true;
            return;
        }
        let entry = &mut self.procs[pid.index()];
        match entry.state {
            ProcState::Parked => {
                entry.state = ProcState::Scheduled;

                self.queue.push(self.now, EventKind::Wake(pid));
            }
            ProcState::Scheduled | ProcState::Done => {}
        }
    }

    /// Wake a parked process at a future virtual time (a timer).
    pub fn wake_at(&mut self, at: SimTime, pid: ProcId) {
        debug_assert!(at >= self.now);
        let entry = &mut self.procs[pid.index()];
        if entry.state == ProcState::Parked {
            entry.state = ProcState::Scheduled;
            self.queue.push(at, EventKind::Wake(pid));
        }
    }

    /// Schedule a closure to run at virtual time `at`.
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, f: F) {
        debug_assert!(at >= self.now, "cannot schedule in the past");
        self.queue.push(at, EventKind::Closure(Box::new(f)));
    }

    /// Schedule a closure with a structural [`EventLabel`], so the
    /// exhaustive explorer can reason about which same-instant orders
    /// commute. Only label an event `channel(src, dst)` if its closure
    /// provably touches nothing but endpoint state of those two nodes.
    pub fn schedule_at_labeled<F: FnOnce(&mut Sim) + 'static>(
        &mut self,
        at: SimTime,
        label: EventLabel,
        f: F,
    ) {
        debug_assert!(at >= self.now, "cannot schedule in the past");
        self.queue.push_labeled(at, label, EventKind::Closure(Box::new(f)));
    }

    /// Schedule a closure to run after a virtual delay.
    pub fn schedule_in<F: FnOnce(&mut Sim) + 'static>(&mut self, delay: SimTime, f: F) {
        self.schedule_at(self.now + delay, f);
    }

    /// Whether the given process has finished.
    pub fn is_done(&self, pid: ProcId) -> bool {
        self.procs[pid.index()].state == ProcState::Done
    }

    /// Diagnostic name of a process.
    pub fn proc_name(&self, pid: ProcId) -> &str {
        &self.procs[pid.index()].name
    }

    /// Fire events until the queue is empty (all processes parked or done).
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.fire_next() {}
        self.now
    }

    /// Fire events until the queue is empty or virtual time would exceed
    /// `deadline`. Events at exactly `deadline` are fired.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.fire_next();
        }
        // Even if nothing happened at `deadline`, time advances to it.
        if self.now < deadline {
            self.now = deadline;
        }
        self.now
    }

    /// Fire events until `pred` returns true (checked after every event) or
    /// the queue drains. Returns true if the predicate fired.
    pub fn run_while<F: FnMut() -> bool>(&mut self, mut keep_going: F) -> bool {
        while keep_going() {
            if !self.fire_next() {
                return false;
            }
        }
        true
    }

    /// Number of pending events (diagnostics).
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn fire_next(&mut self) -> bool {
        let ev = if self.explore.is_some() {
            let Some(ev) = self.next_explored() else {
                return false;
            };
            ev
        } else {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            ev
        };
        debug_assert!(ev.at >= self.now, "event queue went backwards");
        self.now = ev.at;
        self.stats.events += 1;
        // Fold the pop order into the schedule fingerprint (SplitMix64 over
        // the running hash and the event identity).
        let mut z = self
            .fingerprint
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(ev.at.0)
            .wrapping_add(ev.seq.rotate_left(32));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        self.fingerprint = z ^ (z >> 31);
        match ev.kind {
            EventKind::Closure(f) => f(self),
            EventKind::Wake(pid) => self.step_proc(pid),
        }
        true
    }

    /// Explore-mode event selection: pop the full same-instant tie set; if
    /// it is a genuine branch point (two or more enabled events), consult
    /// the replay schedule (FIFO once exhausted), record the decision, and
    /// push the unchosen events back with their original order intact.
    fn next_explored(&mut self) -> Option<crate::event::Scheduled> {
        let mut ties = self.queue.pop_ties();
        if ties.is_empty() {
            return None;
        }
        if ties.len() == 1 {
            return ties.pop();
        }
        let ex = self.explore.as_mut().expect("explore mode");
        let idx = if ex.cursor < ex.schedule.len() {
            (ex.schedule[ex.cursor] as usize).min(ties.len() - 1)
        } else {
            0
        };
        ex.cursor += 1;
        let digest = match &ex.digest {
            Some(f) => f(),
            None => 0,
        };
        ex.trace.push(ChoicePoint {
            at: ties[0].at,
            enabled: ties
                .iter()
                .map(|s| EnabledEvent { seq: s.seq, label: s.label })
                .collect(),
            chosen: idx as u32,
            digest,
        });
        let ev = ties.remove(idx);
        for rest in ties {
            self.queue.push_back(rest);
        }
        Some(ev)
    }

    fn step_proc(&mut self, pid: ProcId) {
        {
            let entry = &self.procs[pid.index()];
            if entry.state != ProcState::Scheduled {
                self.stats.stale_wakes += 1;
                return;
            }
        }
        let proc_rc = Rc::clone(&self.procs[pid.index()].proc_);
        self.stepping = Some(pid);
        self.self_wake = false;
        let step = proc_rc.borrow_mut().step(self, pid);
        self.stepping = None;
        self.stats.steps += 1;
        let resched = self.self_wake;
        self.self_wake = false;
        let entry = &mut self.procs[pid.index()];
        match step {
            Step::Yield(d) => {

                let at = self.now + d;
                self.queue.push(at, EventKind::Wake(pid));
            }
            Step::Park => {
                if resched {
                    self.queue.push(self.now, EventKind::Wake(pid));
                } else {
                    entry.state = ProcState::Parked;
                }
            }
            Step::Done => {
                entry.state = ProcState::Done;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Appends its wake times to a shared log, yielding a fixed interval a
    /// fixed number of times.
    struct Ticker {
        log: Rc<RefCell<Vec<u64>>>,
        interval: SimTime,
        remaining: u32,
    }

    impl Process for Ticker {
        fn step(&mut self, sim: &mut Sim, _me: ProcId) -> Step {
            self.log.borrow_mut().push(sim.now().as_nanos());
            self.remaining -= 1;
            if self.remaining == 0 {
                Step::Done
            } else {
                Step::Yield(self.interval)
            }
        }
        fn name(&self) -> &str {
            "ticker"
        }
    }

    #[test]
    fn yield_advances_virtual_time() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let pid = sim.spawn(Ticker {
            log: Rc::clone(&log),
            interval: SimTime::from_nanos(50),
            remaining: 4,
        });
        let end = sim.run();
        assert_eq!(&*log.borrow(), &[0, 50, 100, 150]);
        assert_eq!(end, SimTime::from_nanos(150));
        assert!(sim.is_done(pid));
    }

    #[test]
    fn two_processes_interleave_deterministically() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        sim.spawn(Ticker {
            log: Rc::clone(&log),
            interval: SimTime::from_nanos(30),
            remaining: 3,
        });
        sim.spawn_at(
            SimTime::from_nanos(10),
            Ticker {
                log: Rc::clone(&log),
                interval: SimTime::from_nanos(30),
                remaining: 3,
            },
        );
        sim.run();
        assert_eq!(&*log.borrow(), &[0, 10, 30, 40, 60, 70]);
    }

    /// A process that parks until woken, recording how many times it ran.
    struct Sleeper {
        runs: Rc<RefCell<u32>>,
    }
    impl Process for Sleeper {
        fn step(&mut self, _sim: &mut Sim, _me: ProcId) -> Step {
            *self.runs.borrow_mut() += 1;
            Step::Park
        }
    }

    #[test]
    fn park_and_wake() {
        let runs = Rc::new(RefCell::new(0));
        let mut sim = Sim::new();
        let pid = sim.spawn_parked(Sleeper { runs: Rc::clone(&runs) });
        sim.run();
        assert_eq!(*runs.borrow(), 0, "parked process must not run");
        sim.schedule_in(SimTime::from_nanos(5), move |s| s.wake(pid));
        sim.run();
        assert_eq!(*runs.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_nanos(5));
    }

    #[test]
    fn wake_while_busy_is_coalesced() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        let pid = sim.spawn(Ticker {
            log: Rc::clone(&log),
            interval: SimTime::from_nanos(100),
            remaining: 2,
        });
        // Wake attempts while the ticker is "busy" must not double-step it.
        sim.schedule_in(SimTime::from_nanos(10), move |s| s.wake(pid));
        sim.schedule_in(SimTime::from_nanos(20), move |s| s.wake(pid));
        sim.run();
        assert_eq!(&*log.borrow(), &[0, 100]);
        assert!(sim.stats().stale_wakes == 0, "busy wakes are dropped, not staled");
    }

    /// A process that wakes itself through a side effect during its own step,
    /// then parks — the kernel must convert that into an immediate re-step.
    struct SelfWaker {
        runs: Rc<RefCell<u32>>,
    }
    impl Process for SelfWaker {
        fn step(&mut self, sim: &mut Sim, me: ProcId) -> Step {
            let mut runs = self.runs.borrow_mut();
            *runs += 1;
            if *runs == 1 {
                sim.wake(me); // e.g. loopback delivery to our own queue
                Step::Park
            } else {
                Step::Done
            }
        }
    }

    #[test]
    fn self_wake_during_step_is_not_lost() {
        let runs = Rc::new(RefCell::new(0));
        let mut sim = Sim::new();
        sim.spawn(SelfWaker { runs: Rc::clone(&runs) });
        sim.run();
        assert_eq!(*runs.borrow(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        sim.spawn(Ticker {
            log: Rc::clone(&log),
            interval: SimTime::from_nanos(40),
            remaining: 100,
        });
        sim.run_until(SimTime::from_nanos(100));
        assert_eq!(&*log.borrow(), &[0, 40, 80]);
        assert_eq!(sim.now(), SimTime::from_nanos(100));
        sim.run_until(SimTime::from_nanos(120));
        assert_eq!(&*log.borrow(), &[0, 40, 80, 120]);
    }

    #[test]
    fn closures_and_wakes_fifo_at_same_time() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new();
        for i in 0..4u64 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(10), move |_s| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(&*log.borrow(), &[0, 1, 2, 3]);
    }

    fn same_time_order(policy: TieBreak) -> (Vec<u64>, u64) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::with_tie_break(policy);
        for i in 0..8u64 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(10), move |_s| log.borrow_mut().push(i));
        }
        sim.run();
        let order = log.borrow().clone();
        (order, sim.schedule_fingerprint())
    }

    #[test]
    fn tie_break_policies_permute_same_time_events() {
        let (fifo, fp_fifo) = same_time_order(TieBreak::Fifo);
        let (lifo, fp_lifo) = same_time_order(TieBreak::Lifo);
        let (s1, fp_s1) = same_time_order(TieBreak::Seeded(1));
        let (s1_again, fp_s1_again) = same_time_order(TieBreak::Seeded(1));
        assert_eq!(fifo, (0..8u64).collect::<Vec<_>>());
        assert_eq!(lifo, (0..8u64).rev().collect::<Vec<_>>());
        assert_eq!(s1, s1_again, "seeded schedules are reproducible");
        assert_eq!(fp_s1, fp_s1_again);
        assert_ne!(fp_fifo, fp_lifo, "different schedules → different fingerprints");
        assert_ne!(fp_fifo, fp_s1);
        let mut sorted = s1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, fifo, "every event still fires exactly once");
    }

    /// Run four same-instant closures under an explicit schedule and return
    /// (observed order, fingerprint, trace).
    fn explored_order(choices: &[u32]) -> (Vec<u64>, u64, Vec<ChoicePoint>) {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::with_schedule(choices);
        for i in 0..4u64 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(10), move |_s| log.borrow_mut().push(i));
        }
        sim.run();
        let order = log.borrow().clone();
        let trace = sim.take_choice_trace();
        (order, sim.schedule_fingerprint(), trace)
    }

    #[test]
    fn empty_schedule_reproduces_fifo_run_and_fingerprint() {
        let (fifo_order, fp_fifo) = same_time_order(TieBreak::Fifo);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::with_schedule(&[]);
        for i in 0..8u64 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(10), move |_s| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), fifo_order);
        assert_eq!(sim.schedule_fingerprint(), fp_fifo);
    }

    #[test]
    fn schedule_choices_pick_tie_order_and_trace_replays() {
        // Choice k picks the (k+1)-th remaining event at each branch point.
        let (order, fp, trace) = explored_order(&[3, 2, 1]);
        assert_eq!(order, vec![3, 2, 1, 0], "indices select from the remaining set");
        // Branch points: 4-way, 3-way, 2-way (final singleton unrecorded).
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].enabled.len(), 4);
        assert_eq!(trace[1].enabled.len(), 3);
        assert_eq!(trace[2].enabled.len(), 2);
        assert_eq!(trace.iter().map(|c| c.chosen).collect::<Vec<_>>(), vec![3, 2, 1]);
        // Replaying the trace's own choices reproduces the run exactly.
        let chosen: Vec<u32> = trace.iter().map(|c| c.chosen).collect();
        let (order2, fp2, _) = explored_order(&chosen);
        assert_eq!(order2, order);
        assert_eq!(fp2, fp);
        // Out-of-range choices clamp instead of panicking.
        let (order3, _, _) = explored_order(&[99]);
        assert_eq!(order3, vec![3, 0, 1, 2]);
    }

    #[test]
    fn state_digest_hook_records_at_branch_points() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::with_schedule(&[]);
        for i in 0..3u64 {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |_s| log.borrow_mut().push(i));
        }
        let digest_src = Rc::clone(&log);
        sim.set_state_digest(move || digest_src.borrow().len() as u64);
        sim.run();
        let trace = sim.take_choice_trace();
        // Digest sampled *before* the chosen event fires: 0 events done at
        // the first branch, 1 at the second.
        assert_eq!(trace.iter().map(|c| c.digest).collect::<Vec<_>>(), vec![0, 1]);
        assert!(sim.exploring());
        let mut plain = Sim::new();
        plain.set_state_digest(|| 42); // no-op outside explore mode
        assert!(plain.take_choice_trace().is_empty());
    }

    #[test]
    fn fingerprint_identical_for_identical_runs() {
        let run = || {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new();
            sim.spawn(Ticker {
                log,
                interval: SimTime::from_nanos(25),
                remaining: 5,
            });
            sim.run();
            sim.schedule_fingerprint()
        };
        assert_eq!(run(), run());
        assert_ne!(run(), 0, "a non-trivial run should leave a non-zero hash");
    }
}
