//! `latency-bench` — deterministic tail-latency attribution and SLO gate.
//!
//! Runs ysb and nb7 on the virtual cluster with full observability and
//! reports per-stage latency quantiles (p50/p99/p99.9/p99.99) for every
//! record-lifecycle stage, plus the per-key heat top-k. Everything is
//! virtual time from the deterministic simulator: same seed, same bytes —
//! the emitted JSON can be `cmp`'d against the checked-in baseline.
//!
//! ```text
//! latency-bench                          # run, write BENCH_latency.json
//! latency-bench --out FILE               # JSON destination
//! latency-bench --slo SLO.toml           # enforce tail budgets (exit 1 on breach)
//! latency-bench --baseline FILE          # regression gate vs a previous JSON
//! latency-bench --plant ssb_apply=10     # inflate a stage's cost knobs (CI self-test)
//! latency-bench --records N              # records per partition
//! ```
//!
//! On a budget breach or regression the tool captures a flight-recorder
//! dump from the breaching run (last trace events, schedule context, and
//! the full registry snapshot with the per-stage breakdown) and prints it
//! before exiting non-zero — a breach report is self-contained.

use slash_core::{RunConfig, SlashCluster};
use slash_obs::{Histogram, Obs, Stage, STAGE_HIST};
use slash_workloads::{nb7, ysb, GenConfig, Workload};

const NODES: usize = 2;
const WORKERS: usize = 2;

/// Quantiles reported per stage: `(q, json key, SLO.toml key suffix)`.
const QS: [(f64, &str, &str); 4] = [
    (0.5, "p50", "p50"),
    (0.99, "p99", "p99"),
    (0.999, "p99.9", "p99_9"),
    (0.9999, "p99.99", "p99_99"),
];

/// One reported row: a stage (or the end-to-end total) of one workload.
struct Row {
    workload: &'static str,
    stage: String,
    record_path: bool,
    count: u64,
    mean: u64,
    q: [u64; 4],
    max: u64,
}

impl Row {
    fn from_hist(workload: &'static str, stage: &str, record_path: bool, h: &Histogram) -> Row {
        let mut q = [0u64; 4];
        for (i, (quant, _, _)) in QS.iter().enumerate() {
            q[i] = h.quantile(*quant).unwrap_or(0);
        }
        Row {
            workload,
            stage: stage.to_string(),
            record_path,
            count: h.count(),
            mean: h.mean().unwrap_or(0),
            q,
            max: h.max().unwrap_or(0),
        }
    }

    /// Value for an SLO key suffix (`p50`, `p99`, `p99_9`, `p99_99`).
    fn value_of(&self, suffix: &str) -> Option<u64> {
        QS.iter()
            .position(|(_, _, s)| *s == suffix)
            .map(|i| self.q[i])
    }
}

/// One heat-sketch row: a top-k entry of one node's key sketch.
struct HeatRow {
    workload: &'static str,
    label: String,
    rank: usize,
    key: u64,
    count: u64,
    err: u64,
}

/// Results of one workload run, with its obs handle kept alive so a gate
/// failure can capture a flight-recorder dump from the breaching run.
struct WlRun {
    name: &'static str,
    obs: Obs,
    rows: Vec<Row>,
    heat: Vec<HeatRow>,
}

fn run_workload(w: &Workload, records: u64, plant: Option<&(String, f64)>) -> WlRun {
    let mut cfg = RunConfig::new(NODES, WORKERS);
    // Small epochs so the merge/close stages see real traffic at bench
    // scale (the default 64 MB would never close mid-run here).
    cfg.epoch_bytes = 1024 * 1024;
    if let Some((stage, factor)) = plant {
        apply_plant(&mut cfg, stage, *factor);
    }
    let obs = Obs::enabled(4096);
    let report = SlashCluster::run_with_obs(w.plan.clone(), w.partitions.clone(), cfg, obs.clone());
    assert_eq!(report.records, records * (NODES * WORKERS) as u64);

    let mut rows = Vec::new();
    let mut heat = Vec::new();
    obs.with_registry(|reg| {
        // End-to-end record latency, merged across node labels.
        let mut e2e = Histogram::new();
        for (name, _, h) in reg.hists() {
            if name == "record_latency_ns" {
                e2e.merge(h);
            }
        }
        rows.push(Row::from_hist(w.name, "end_to_end", true, &e2e));
        for stage in Stage::ALL {
            if let Some(h) = reg.hist(STAGE_HIST, stage.name()) {
                if h.count() > 0 {
                    rows.push(Row::from_hist(w.name, stage.name(), stage.on_record_path(), h));
                }
            }
        }
        for (name, label, sketch) in reg.heats() {
            if name == "key_heat" {
                for (rank, e) in sketch.top(8).into_iter().enumerate() {
                    heat.push(HeatRow {
                        workload: w.name,
                        label: label.to_string(),
                        rank,
                        key: e.key,
                        count: e.count,
                        err: e.err,
                    });
                }
            }
        }
    });
    WlRun {
        name: w.name,
        obs,
        rows,
        heat,
    }
}

/// Inflate the cost-model knobs that feed one attribution stage — the CI
/// self-test plants a regression here and asserts the gate catches it.
fn apply_plant(cfg: &mut RunConfig, stage: &str, factor: f64) {
    match stage {
        "source" => {
            cfg.cost.record_pipeline_ns *= factor;
            cfg.cost.task_queue_ns *= factor;
            cfg.cost.source_per_byte_ns *= factor;
        }
        "ssb_apply" => {
            cfg.cost.rmw_base_ns *= factor;
            cfg.cost.append_base_ns *= factor;
            cfg.cost.combine_hit_ns *= factor;
        }
        "epoch_merge" => {
            cfg.cost.merge_entry_ns *= factor;
            cfg.cost.post_wr_ns *= factor;
        }
        other => {
            eprintln!(
                "error: --plant supports source|ssb_apply|epoch_merge, got {other}"
            );
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------------
// SLO.toml — hand-rolled parser for the subset the gate uses.
// ---------------------------------------------------------------------

/// Parsed SLO spec: a global regression factor plus per-workload budgets
/// keyed `(workload, "stage_quantile")` in nanoseconds.
struct Slo {
    regression_factor: f64,
    budgets: Vec<(String, String, u64)>,
}

fn parse_slo(path: &str) -> Slo {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut slo = Slo {
        regression_factor: 1.5,
        budgets: Vec::new(),
    };
    let mut section = String::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        // `[rescale]` budgets belong to the `repro rescale` gate, not to
        // this tool's per-stage quantiles.
        if section == "rescale" {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            eprintln!("error: {path}:{}: expected `key = value`, got {line:?}", ln + 1);
            std::process::exit(2);
        };
        let (key, value) = (key.trim(), value.trim());
        if section.is_empty() && key == "regression_factor" {
            match value.parse::<f64>() {
                Ok(f) if f >= 1.0 => slo.regression_factor = f,
                _ => {
                    eprintln!("error: {path}:{}: bad regression_factor {value:?}", ln + 1);
                    std::process::exit(2);
                }
            }
            continue;
        }
        let Ok(ns) = value.parse::<u64>() else {
            eprintln!("error: {path}:{}: budget must be integer ns, got {value:?}", ln + 1);
            std::process::exit(2);
        };
        if section.is_empty() {
            eprintln!("error: {path}:{}: budget {key:?} outside a [workload] section", ln + 1);
            std::process::exit(2);
        }
        slo.budgets.push((section.clone(), key.to_string(), ns));
    }
    slo
}

// ---------------------------------------------------------------------
// Baseline JSON — reads back the flat rows this tool writes.
// ---------------------------------------------------------------------

/// Extract a string field from a single-line JSON row.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extract an integer field from a single-line JSON row.
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .ok()
}

/// Baseline quantiles per `(workload, stage)`, in [`QS`] order.
fn parse_baseline(path: &str) -> Vec<(String, String, [u64; 4])> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: could not read baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let (Some(wl), Some(stage)) = (json_str(line, "workload"), json_str(line, "stage"))
        else {
            continue;
        };
        let mut q = [0u64; 4];
        let mut ok = true;
        for (i, (_, key, _)) in QS.iter().enumerate() {
            match json_u64(line, key) {
                Some(v) => q[i] = v,
                None => ok = false,
            }
        }
        if ok {
            out.push((wl.to_string(), stage.to_string(), q));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Output.
// ---------------------------------------------------------------------

fn write_json(
    path: &str,
    runs: &[WlRun],
    records: u64,
    plant: Option<&(String, f64)>,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"latency-bench-v1\",\n");
    out.push_str(&format!("  \"records_per_partition\": {records},\n"));
    out.push_str(&format!("  \"nodes\": {NODES},\n"));
    out.push_str(&format!("  \"workers_per_node\": {WORKERS},\n"));
    match plant {
        Some((s, f)) => out.push_str(&format!("  \"plant\": \"{s}={f}\",\n")),
        None => out.push_str("  \"plant\": null,\n"),
    }
    out.push_str("  \"rows\": [\n");
    let total_rows: usize = runs.iter().map(|r| r.rows.len()).sum();
    let mut i = 0;
    for run in runs {
        for r in &run.rows {
            i += 1;
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"stage\": \"{}\", \"record_path\": {}, \
                 \"count\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}, \"p99.9\": {}, \
                 \"p99.99\": {}, \"max\": {}}}{}\n",
                r.workload,
                r.stage,
                r.record_path,
                r.count,
                r.mean,
                r.q[0],
                r.q[1],
                r.q[2],
                r.q[3],
                r.max,
                if i < total_rows { "," } else { "" }
            ));
        }
    }
    out.push_str("  ],\n  \"heat\": [\n");
    let total_heat: usize = runs.iter().map(|r| r.heat.len()).sum();
    let mut i = 0;
    for run in runs {
        for h in &run.heat {
            i += 1;
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"label\": \"{}\", \"rank\": {}, \
                 \"key\": {}, \"count\": {}, \"err\": {}}}{}\n",
                h.workload,
                h.label,
                h.rank,
                h.key,
                h.count,
                h.err,
                if i < total_heat { "," } else { "" }
            ));
        }
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    out
}

fn print_table(runs: &[WlRun]) {
    for run in runs {
        println!(
            "{:<5} {:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "query", "stage", "count", "mean", "p50", "p99", "p99.9", "p99.99", "max"
        );
        for r in &run.rows {
            println!(
                "{:<5} {:<16} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                r.workload, r.stage, r.count, r.mean, r.q[0], r.q[1], r.q[2], r.q[3], r.max
            );
        }
    }
}

fn main() {
    let mut out_path = String::from("BENCH_latency.json");
    let mut slo_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut plant: Option<(String, f64)> = None;
    let mut records = 100_000u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or(out_path),
            "--slo" => slo_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            "--records" => records = args.next().and_then(|v| v.parse().ok()).unwrap_or(records),
            "--plant" => {
                let spec = args.next().unwrap_or_default();
                let Some((stage, factor)) = spec.split_once('=') else {
                    eprintln!("error: --plant expects STAGE=FACTOR, got {spec:?}");
                    std::process::exit(2);
                };
                let Ok(f) = factor.parse::<f64>() else {
                    eprintln!("error: bad --plant factor {factor:?}");
                    std::process::exit(2);
                };
                plant = Some((stage.to_string(), f));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: latency-bench [--out FILE] [--slo FILE] [--baseline FILE] \
                     [--plant STAGE=FACTOR] [--records N]"
                );
                std::process::exit(2);
            }
        }
    }

    println!(
        "latency-bench: ysb/nb7, {NODES} nodes x {WORKERS} workers, {records} records/partition{}",
        match &plant {
            Some((s, f)) => format!(", planted {s} x{f}"),
            None => String::new(),
        }
    );
    let gen = GenConfig::new(NODES * WORKERS, records);
    let runs = vec![
        run_workload(&ysb(&gen), records, plant.as_ref()),
        run_workload(&nb7(&gen), records, plant.as_ref()),
    ];
    print_table(&runs);
    write_json(&out_path, &runs, records, plant.as_ref());
    println!("  -> {out_path}");

    // ---------------- SLO gate ----------------
    let Some(slo_path) = slo_path else {
        return;
    };
    let slo = parse_slo(&slo_path);
    let mut breaches: Vec<(usize, String)> = Vec::new(); // (run index, message)

    for (wl, key, budget) in &slo.budgets {
        let Some(run_idx) = runs.iter().position(|r| r.name == wl) else {
            eprintln!("error: SLO budget for unknown workload {wl:?}");
            std::process::exit(2);
        };
        // Key is `{stage}_{quantile}`; quantile suffixes contain `_`, so
        // match against the known suffixes from the right.
        let Some((stage, suffix, value)) = QS.iter().find_map(|(_, _, s)| {
            let stage = key.strip_suffix(s)?.strip_suffix('_')?;
            let row = runs[run_idx].rows.iter().find(|r| r.stage == stage)?;
            Some((stage.to_string(), *s, row.value_of(s)?))
        }) else {
            eprintln!("error: SLO key {wl}.{key} names no reported stage/quantile");
            std::process::exit(2);
        };
        if value > *budget {
            breaches.push((
                run_idx,
                format!("{wl}.{stage} {suffix}={value}ns exceeds budget {budget}ns"),
            ));
        }
    }

    if let Some(bp) = &baseline_path {
        let baseline = parse_baseline(bp);
        for (run_idx, run) in runs.iter().enumerate() {
            for r in &run.rows {
                let Some((_, _, base)) = baseline
                    .iter()
                    .find(|(wl, st, _)| wl == r.workload && *st == r.stage)
                else {
                    continue; // new stage: no baseline yet
                };
                for (i, (_, key, _)) in QS.iter().enumerate() {
                    // Small absolute slack on top of the factor: single-ns
                    // baselines would otherwise flag ±1 rounding shifts.
                    let limit = (base[i] as f64 * slo.regression_factor) as u64 + 10;
                    if r.q[i] > limit {
                        breaches.push((
                            run_idx,
                            format!(
                                "{}.{} {key}={}ns regressed past {:.2}x baseline {}ns",
                                r.workload, r.stage, r.q[i], slo.regression_factor, base[i]
                            ),
                        ));
                    }
                }
            }
        }
    }

    if breaches.is_empty() {
        println!(
            "SLO gate: PASS ({} budgets from {slo_path}{})",
            slo.budgets.len(),
            match &baseline_path {
                Some(b) => format!(", baseline {b}"),
                None => String::new(),
            }
        );
        return;
    }

    // Breach: capture a flight-recorder dump per breaching run (the dump
    // carries the last trace events and the full registry snapshot with
    // the per-stage histograms) and print everything before failing.
    eprintln!("SLO gate: FAIL ({} breaches)", breaches.len());
    for (run_idx, run) in runs.iter().enumerate() {
        let msgs: Vec<&str> = breaches
            .iter()
            .filter(|(i, _)| *i == run_idx)
            .map(|(_, m)| m.as_str())
            .collect();
        if msgs.is_empty() {
            continue;
        }
        let stages: Vec<String> = run
            .rows
            .iter()
            .map(|r| format!("{}.p99.99={}ns", r.stage, r.q[3]))
            .collect();
        run.obs.record_failure(
            &format!("SLO breach: {}", run.name),
            &format!("{}; breakdown: {}", msgs.join("; "), stages.join(" ")),
        );
        for dump in run.obs.take_failures() {
            eprintln!("{}", dump.render());
        }
    }
    for (_, m) in &breaches {
        eprintln!("BREACH: {m}");
    }
    std::process::exit(1);
}
