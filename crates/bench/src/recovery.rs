//! The recovery-latency experiment (`repro -- recovery`).
//!
//! For every built-in fault type — node crash, link flap, link
//! degradation, delayed completions — run YSB under fault tolerance with
//! exactly one fault injected mid-run, and compare against the same-seed
//! *no-fault* fault-tolerant baseline. Reported per fault:
//!
//! * **time-to-recover** — injection to repair completion, virtual time;
//! * **records lost** — processed-record delta vs the baseline (the paper's
//!   exactness story demands zero: epoch-aligned restore plus CRDT-idempotent
//!   delta replay neither drops nor double-counts);
//! * **exactness** — whether the per-window results digest *and* every
//!   node's final primary-state digest match the no-fault run bit-exactly.
//!
//! Fault times and detection timeouts are derived from the baseline's
//! completion time so the experiment stays meaningful across
//! `SLASH_RECORDS` scales; everything runs in virtual time and is fully
//! deterministic.

use slash_chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash_core::{RecoveryAction, RecoveryReport, RunConfig, RunReport, SlashCluster};
use slash_desim::SimTime;
use slash_obs::Obs;
use slash_perfmodel::Table;
use slash_workloads::{ysb, GenConfig};

use crate::scale::Scale;

/// Logical nodes in the recovery experiment (one crashes).
const NODES: usize = 3;
/// The fault victim (a middle node: it both leads and helps partitions).
const VICTIM: usize = 1;

/// Outcome of one fault type vs the no-fault baseline.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// Kebab-case fault name (`node-crash`, `link-flap`, ...).
    pub fault: &'static str,
    /// When the fault was injected.
    pub injected_at: SimTime,
    /// Detection latency of the first repaired event (injection → stall
    /// noticed), if any fault was detected.
    pub detect_latency: Option<SimTime>,
    /// Worst-case injection → repair-complete latency.
    pub time_to_recover: Option<SimTime>,
    /// Human-readable summary of the repairs performed.
    pub action: String,
    /// Checkpoints that became durable during the run.
    pub checkpoints: u64,
    /// Records processed by this run.
    pub records: u64,
    /// Processed-record delta vs the no-fault baseline (exactness: 0).
    pub records_lost: i64,
    /// Results digest and all primary-state digests match the baseline.
    pub exact: bool,
    /// Completion time of the run (virtual).
    pub completion: SimTime,
}

/// Cluster shape of one run: node count, workers per node, checkpoint
/// copies. The compound-fault rows vary these; each shape gets its own
/// no-fault baseline for the exactness comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Shape {
    nodes: usize,
    workers_per_node: usize,
    ckpt_copies: usize,
}

const BASE_SHAPE: Shape = Shape {
    nodes: NODES,
    workers_per_node: 1,
    ckpt_copies: 2,
};

fn run_config(scale: Scale, shape: Shape) -> (RunConfig, GenConfig) {
    let mut cfg = RunConfig::new(shape.nodes, shape.workers_per_node);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    // One partition per worker; keep enough records that a mid-run fault
    // lands well before completion even at tiny scales.
    let gen = GenConfig::new(
        shape.nodes * shape.workers_per_node,
        scale.records.max(8_000),
    );
    (cfg, gen)
}

fn chaos_run(
    scale: Scale,
    shape: Shape,
    plan: &FaultPlan,
    detect_timeout: SimTime,
) -> (RunReport, RecoveryReport) {
    let (cfg, gen) = run_config(scale, shape);
    let w = ysb(&gen);
    let chaos = ChaosConfig {
        plan: plan.clone(),
        ft: FtConfig {
            detect_timeout,
            ckpt_max_chunk: 16 * 1024,
            ckpt_copies: shape.ckpt_copies,
        },
        pre_split: Vec::new(),
    };
    SlashCluster::run_chaos(w.plan, w.partitions, cfg, &chaos, Obs::disabled())
}

fn describe(rec: &RecoveryReport) -> String {
    if rec.events.is_empty() {
        return "-".to_string();
    }
    let mut promoted = 0usize;
    let mut restarts = 0u32;
    let mut channels = 0usize;
    for e in &rec.events {
        match e.action {
            RecoveryAction::Promoted { restarts: r, .. } => {
                promoted += 1;
                restarts += r;
            }
            RecoveryAction::ChannelsReset { channels: c } => channels += c,
        }
    }
    let mut parts = Vec::new();
    if promoted > 0 && restarts > 0 {
        parts.push(format!("promote x{promoted} ({restarts} restart)"));
    } else if promoted > 0 {
        parts.push(format!("promote x{promoted}"));
    }
    if channels > 0 {
        parts.push(format!("reset {channels} ch"));
    }
    if parts.is_empty() {
        parts.push(format!("{} events", rec.events.len()));
    }
    parts.join(", ")
}

fn point(
    fault: &'static str,
    injected_at: SimTime,
    report: &RunReport,
    rec: &RecoveryReport,
    base_report: &RunReport,
    base_rec: &RecoveryReport,
) -> RecoveryPoint {
    let exact = rec.results_digest == base_rec.results_digest
        && rec.state_digests == base_rec.state_digests;
    RecoveryPoint {
        fault,
        injected_at,
        detect_latency: rec
            .events
            .first()
            .map(|e| e.detected_at - e.injected_at),
        time_to_recover: rec.max_time_to_recover(),
        action: describe(rec),
        checkpoints: rec.checkpoints_durable,
        records: report.records,
        records_lost: base_report.records as i64 - report.records as i64,
        exact,
        completion: report.completion_time,
    }
}

/// Run the experiment: the no-fault fault-tolerant baseline plus one run
/// per built-in fault type, all compared against the baseline for
/// exactness. Returns one point per run (baseline first).
pub fn run(scale: Scale) -> Vec<RecoveryPoint> {
    // Baseline pass 1: learn the completion time so fault times and the
    // detection timeout can be placed proportionally. The driver advances
    // in detection-timeout slices and reports completion rounded up to
    // one, so probe with a small timeout to keep the overshoot small.
    let probe_timeout = SimTime::from_micros(200);
    let (probe_report, _) = chaos_run(scale, BASE_SHAPE, &FaultPlan::new(), probe_timeout);
    let span = probe_report.completion_time;
    let inject_at = SimTime::from_nanos(span.as_nanos() * 2 / 5);
    let detect_timeout = SimTime::from_nanos((span.as_nanos() / 8).max(50_000));
    let flap_for = SimTime::from_nanos((span.as_nanos() / 16).max(10_000));
    let degrade_extra = SimTime::from_micros(2);
    let degrade_for = SimTime::from_nanos((span.as_nanos() / 8).max(20_000));

    // Baseline pass 2 with the final detection timeout: the exactness
    // reference every fault run is compared against.
    let (base_report, base_rec) = chaos_run(scale, BASE_SHAPE, &FaultPlan::new(), detect_timeout);

    let mut points = vec![point(
        "none (baseline)",
        SimTime::ZERO,
        &base_report,
        &base_rec,
        &base_report,
        &base_rec,
    )];

    let plans: Vec<(&'static str, FaultPlan)> = vec![
        ("node-crash", FaultPlan::new().crash(inject_at, VICTIM)),
        (
            "link-flap",
            FaultPlan::new().link_flap(inject_at, VICTIM, flap_for),
        ),
        (
            "link-degrade",
            FaultPlan::new().degrade(inject_at, VICTIM, degrade_extra, degrade_for),
        ),
        (
            "delayed-completions",
            FaultPlan::new().delay_completions(inject_at, VICTIM, degrade_extra, degrade_for),
        ),
    ];
    for (fault, plan) in plans {
        let (report, rec) = chaos_run(scale, BASE_SHAPE, &plan, detect_timeout);
        points.push(point(fault, inject_at, &report, &rec, &base_report, &base_rec));
    }

    // ---- Compound faults (cascading failures). Shapes that differ from
    // the base run get their own no-fault baseline for exactness.

    // Two nodes die on the same virtual nanosecond; four nodes so two
    // survivors remain to host both promotions.
    let shape4 = Shape {
        nodes: 4,
        ..BASE_SHAPE
    };
    let (b4_report, b4_rec) = chaos_run(scale, shape4, &FaultPlan::new(), detect_timeout);
    let conc = FaultPlan::new().concurrent(inject_at, &[1, 2]);
    let (report, rec) = chaos_run(scale, shape4, &conc, detect_timeout);
    points.push(point("concurrent-crash", inject_at, &report, &rec, &b4_report, &b4_rec));

    // The victim's designated ring buddy dies first. A single checkpoint
    // copy makes the buddy's death destroy the victim's only live copy,
    // forcing the shipper to re-select a buddy before the victim crashes.
    let shape1c = Shape {
        ckpt_copies: 1,
        ..BASE_SHAPE
    };
    let buddy_at = SimTime::from_nanos(span.as_nanos() / 5);
    let owner_at = SimTime::from_nanos(span.as_nanos() * 7 / 10);
    let buddy = FaultPlan::new().crash(buddy_at, 2).crash(owner_at, VICTIM);
    let (report, rec) = chaos_run(scale, shape1c, &buddy, detect_timeout);
    points.push(point("buddy-dead", buddy_at, &report, &rec, &base_report, &base_rec));

    // A crash aimed into the first crash's recovery window: probe the
    // single-crash run for its detection→commit span, then kill the
    // in-flight promotion's host at the midpoint (virtual-time precision).
    let (_, probe_rec) = chaos_run(
        scale,
        BASE_SHAPE,
        &FaultPlan::new().crash(inject_at, VICTIM),
        detect_timeout,
    );
    if let Some((host, mid)) = probe_rec.events.iter().find_map(|e| match e.action {
        RecoveryAction::Promoted { host, .. } => Some((
            host,
            SimTime::from_nanos((e.detected_at.as_nanos() + e.recovered_at.as_nanos()) / 2),
        )),
        _ => None,
    }) {
        let dr = FaultPlan::new().during_recovery(inject_at, VICTIM, mid - inject_at, host);
        let (report, rec) = chaos_run(scale, BASE_SHAPE, &dr, detect_timeout);
        points.push(point(
            "crash-during-recovery",
            inject_at,
            &report,
            &rec,
            &base_report,
            &base_rec,
        ));
    }

    // A crash with two worker partitions per node: promotion resurrects
    // both of the dead node's partitions.
    let shape_w2 = Shape {
        workers_per_node: 2,
        ..BASE_SHAPE
    };
    let (bw2_report, bw2_rec) = chaos_run(scale, shape_w2, &FaultPlan::new(), detect_timeout);
    let crash = FaultPlan::new().crash(inject_at, VICTIM);
    let (report, rec) = chaos_run(scale, shape_w2, &crash, detect_timeout);
    points.push(point(
        "multi-worker-crash",
        inject_at,
        &report,
        &rec,
        &bw2_report,
        &bw2_rec,
    ));

    points
}

fn us(t: SimTime) -> String {
    format!("{:.1}", t.as_nanos() as f64 / 1_000.0)
}

/// Render the recovery points as the experiment table.
pub fn table(points: &[RecoveryPoint]) -> Table {
    let mut t = Table::new(
        format!(
            "Recovery: time-to-recover and exactness per fault type \
             (YSB, {NODES} nodes, fault on node {VICTIM})"
        ),
        &[
            "fault",
            "inject us",
            "detect us",
            "recover us",
            "action",
            "ckpts",
            "records",
            "lost",
            "exact",
            "complete us",
        ],
    );
    for p in points {
        t.row(vec![
            p.fault.to_string(),
            if p.injected_at == SimTime::ZERO {
                "-".to_string()
            } else {
                us(p.injected_at)
            },
            p.detect_latency.map(us).unwrap_or_else(|| "-".to_string()),
            p.time_to_recover.map(us).unwrap_or_else(|| "-".to_string()),
            p.action.clone(),
            p.checkpoints.to_string(),
            p.records.to_string(),
            p.records_lost.to_string(),
            if p.exact { "yes" } else { "NO" }.to_string(),
            us(p.completion),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_type_recovers_exactly() {
        let points = run(Scale::tiny());
        assert_eq!(
            points.len(),
            9,
            "baseline + four fault types + four compound faults"
        );
        for p in &points {
            assert!(p.exact, "{} diverged from the no-fault run", p.fault);
            assert_eq!(p.records_lost, 0, "{} lost records", p.fault);
        }
        let crash = points.iter().find(|p| p.fault == "node-crash").unwrap();
        assert!(
            crash.time_to_recover.is_some_and(|t| t > SimTime::ZERO),
            "crash must be detected and repaired"
        );
        let during = points
            .iter()
            .find(|p| p.fault == "crash-during-recovery")
            .expect("probe promotion must exist so the aimed crash runs");
        assert!(
            during.action.contains("restart"),
            "mid-promotion crash must restart the promotion: {}",
            during.action
        );
    }
}
