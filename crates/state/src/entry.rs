//! Log entry layout.
//!
//! Entries are stored densely in the log-structured storage:
//!
//! ```text
//! +-----------+-----------+---------+--------+---------+------------------+
//! | key 16 B  | prev 8 B  | len 4 B | kind 1 | pad 3 B | value (len, 8-al)|
//! +-----------+-----------+---------+--------+---------+------------------+
//! ```
//!
//! `prev` chains the appended entries of one key (holistic state); fixed
//! entries set it to [`NO_PREV`]. The layout is position-independent so a
//! raw byte-range of entries can be shipped to a leader and replayed there
//! (the coherence protocol's delta transfer).

use crate::hash::StateKey;

/// Header size in bytes.
pub const HEADER_SIZE: usize = 32;

/// Sentinel for "no previous entry in this key's chain".
pub const NO_PREV: u64 = u64::MAX;

/// Entry kind tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// In-place updatable fixed-size value.
    Fixed,
    /// One appended element of a holistic value.
    Appended,
}

impl EntryKind {
    fn to_u8(self) -> u8 {
        match self {
            EntryKind::Fixed => 0,
            EntryKind::Appended => 1,
        }
    }

    /// Decode a kind byte; `None` for anything but the two valid tags.
    pub fn try_from_u8(v: u8) -> Option<EntryKind> {
        match v {
            0 => Some(EntryKind::Fixed),
            1 => Some(EntryKind::Appended),
            _ => None,
        }
    }
}

/// Copy `N` little-endian bytes starting at `at`, zero-filling past the
/// end of `bytes`. The log always hands `decode` a full header (the
/// allocator reserves [`HEADER_SIZE`] up front), so the zero-fill path is
/// corruption-only; it keeps decoding total without a panic site.
fn le_bytes<const N: usize>(bytes: &[u8], at: usize) -> [u8; N] {
    let mut out = [0u8; N];
    for (i, dst) in out.iter_mut().enumerate() {
        if let Some(b) = bytes.get(at + i) {
            *dst = *b;
        }
    }
    out
}

/// Decoded entry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryHeader {
    /// State key.
    pub key: StateKey,
    /// Previous entry of this key's chain, or [`NO_PREV`].
    pub prev: u64,
    /// Value length in bytes.
    pub len: u32,
    /// Entry kind.
    pub kind: EntryKind,
}

impl EntryHeader {
    /// Encode into the first [`HEADER_SIZE`] bytes of `out`.
    pub fn encode(&self, out: &mut [u8]) {
        out[0..16].copy_from_slice(&self.key.to_le_bytes());
        out[16..24].copy_from_slice(&self.prev.to_le_bytes());
        out[24..28].copy_from_slice(&self.len.to_le_bytes());
        out[28] = self.kind.to_u8();
        out[29..32].fill(0);
    }

    /// Decode from the first [`HEADER_SIZE`] bytes of `bytes`. Total: a
    /// corrupt kind byte trips a debug assertion and decodes as `Fixed`
    /// (the conservative choice — fixed entries never chain).
    pub fn decode(bytes: &[u8]) -> EntryHeader {
        let kind_byte = bytes.get(28).copied().unwrap_or(0);
        debug_assert!(
            EntryKind::try_from_u8(kind_byte).is_some(),
            "corrupt log: unknown entry kind {kind_byte}"
        );
        EntryHeader {
            key: StateKey::from_le_bytes(le_bytes(bytes, 0)),
            prev: u64::from_le_bytes(le_bytes(bytes, 16)),
            len: u32::from_le_bytes(le_bytes(bytes, 24)),
            kind: EntryKind::try_from_u8(kind_byte).unwrap_or(EntryKind::Fixed),
        }
    }
}

/// Total stored size (header + value padded to 8 bytes).
#[inline]
pub fn stored_size(value_len: usize) -> usize {
    HEADER_SIZE + value_len.div_ceil(8) * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = EntryHeader {
            key: 0xfeed_face_dead_beef_u128 << 32,
            prev: 12345,
            len: 77,
            kind: EntryKind::Appended,
        };
        let mut buf = [0u8; HEADER_SIZE];
        h.encode(&mut buf);
        assert_eq!(EntryHeader::decode(&buf), h);
    }

    #[test]
    fn stored_size_is_padded() {
        assert_eq!(stored_size(0), 32);
        assert_eq!(stored_size(1), 40);
        assert_eq!(stored_size(8), 40);
        assert_eq!(stored_size(9), 48);
        assert_eq!(stored_size(16), 48);
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert_eq!(EntryKind::try_from_u8(0), Some(EntryKind::Fixed));
        assert_eq!(EntryKind::try_from_u8(1), Some(EntryKind::Appended));
        assert_eq!(EntryKind::try_from_u8(9), None);
    }

    /// In debug builds a corrupt kind byte trips the decode assertion; in
    /// release builds it decodes as `Fixed` (total decoding, no panic site).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "corrupt log")]
    fn corrupt_kind_asserts_in_debug() {
        let mut buf = [0u8; HEADER_SIZE];
        EntryHeader {
            key: 0,
            prev: 0,
            len: 0,
            kind: EntryKind::Fixed,
        }
        .encode(&mut buf);
        buf[28] = 9;
        EntryHeader::decode(&buf);
    }
}
