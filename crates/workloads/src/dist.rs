//! Key distributions: uniform, Zipf, Pareto.
//!
//! Implemented in-repo (over the deterministic xoshiro generator from
//! `slash-desim`) so that workload bytes are reproducible across machines
//! and independent of `rand` version bumps. Zipf uses rejection-inversion
//! sampling (Hörmann & Derflinger), the same algorithm `rand_distr` uses.

use slash_desim::DetRng;

/// Uniform integers over `[0, n)`.
#[derive(Debug, Clone)]
pub struct Uniform {
    n: u64,
}

impl Uniform {
    /// Uniform over `[0, n)`.
    pub fn new(n: u64) -> Self {
        assert!(n > 0);
        Uniform { n }
    }

    /// Draw a sample.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        rng.next_below(self.n)
    }
}

/// Zipf distribution over `{0, …, n-1}` with exponent `s` (the paper's
/// skew sweep uses z = 0.2 … 2.0 over the key domain).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: f64,
    q: f64,
    h_x1: f64,
    h_n: f64,
    s_const: f64,
}

impl Zipf {
    /// Zipf over `n` items with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0);
        assert!(s > 0.0, "use Uniform for s = 0");
        let n = n as f64;
        let q = s;
        let h = |x: f64| -> f64 {
            if (q - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - q) - 1.0) / (1.0 - q)
            }
        };
        let h_inv = |x: f64| -> f64 {
            if (q - 1.0).abs() < 1e-9 {
                x.exp()
            } else {
                (1.0 + x * (1.0 - q)).powf(1.0 / (1.0 - q))
            }
        };
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n + 0.5);
        let s_const = 1.0 - h_inv(h(1.5) - 1.5f64.powf(-q));
        Zipf {
            n,
            q,
            h_x1,
            h_n,
            s_const,
        }
    }

    fn h(&self, x: f64) -> f64 {
        if (self.q - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.q) - 1.0) / (1.0 - self.q)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.q - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.q)).powf(1.0 / (1.0 - self.q))
        }
    }

    /// Draw a sample in `[0, n)`; rank 0 is the hottest key.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        loop {
            let u = self.h_x1 + rng.next_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.s_const || u >= self.h(k + 0.5) - k.powf(-self.q) {
                return k as u64 - 1;
            }
        }
    }
}

/// Pareto-distributed keys over `[0, n)`: rank = ⌊scale·(U^(-1/α) - 1)⌋,
/// clipped to the domain. Produces the long-tailed heavy hitters the
/// paper's NB7 bid keys follow.
#[derive(Debug, Clone)]
pub struct Pareto {
    n: u64,
    alpha: f64,
    scale: f64,
}

impl Pareto {
    /// Pareto over `n` keys with tail index `alpha` (smaller = heavier
    /// tail) and the given scale.
    pub fn new(n: u64, alpha: f64, scale: f64) -> Self {
        assert!(n > 0);
        assert!(alpha > 0.0 && scale > 0.0);
        Pareto { n, alpha, scale }
    }

    /// The paper-flavoured default: a long tail with pronounced heavy
    /// hitters over `n` keys.
    pub fn heavy_hitters(n: u64) -> Self {
        Pareto::new(n, 1.16, 8.0) // 80/20-ish
    }

    /// Draw a sample in `[0, n)`; low ranks are hottest.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = 1.0 - rng.next_f64(); // (0, 1]
        let x = self.scale * (u.powf(-1.0 / self.alpha) - 1.0);
        (x as u64).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(mut f: impl FnMut(&mut DetRng) -> u64, n: usize, buckets: u64) -> Vec<u64> {
        let mut rng = DetRng::new(42);
        let mut h = vec![0u64; buckets as usize];
        for _ in 0..n {
            let k = f(&mut rng);
            assert!(k < buckets, "sample {k} out of range");
            h[k as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_flat() {
        let d = Uniform::new(16);
        let h = histogram(|r| d.sample(r), 160_000, 16);
        for &c in &h {
            assert!((c as f64 - 10_000.0).abs() < 800.0, "{h:?}");
        }
    }

    #[test]
    fn zipf_rank_frequencies_follow_power_law() {
        let d = Zipf::new(1000, 1.0);
        let h = histogram(|r| d.sample(r), 500_000, 1000);
        // Rank 0 ≈ 2× rank 1 ≈ 10× rank 9 for s=1.
        let r0 = h[0] as f64;
        let r1 = h[1] as f64;
        let r9 = h[9] as f64;
        assert!((r0 / r1 - 2.0).abs() < 0.3, "r0/r1 = {}", r0 / r1);
        assert!((r0 / r9 - 10.0).abs() < 2.0, "r0/r9 = {}", r0 / r9);
    }

    #[test]
    fn zipf_skew_concentrates_with_s() {
        let share_of_top = |s: f64| {
            let d = Zipf::new(10_000, s);
            let h = histogram(|r| d.sample(r), 200_000, 10_000);
            let top: u64 = h.iter().take(10).sum();
            top as f64 / 200_000.0
        };
        let low = share_of_top(0.2);
        let high = share_of_top(1.5);
        assert!(high > 3.0 * low, "top-10 share: {low} vs {high}");
        assert!(high > 0.5, "s=1.5 should be dominated by hot keys: {high}");
    }

    #[test]
    fn zipf_handles_s_equal_one() {
        let d = Zipf::new(100, 1.0);
        let mut rng = DetRng::new(7);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn pareto_has_heavy_hitters_and_long_tail() {
        let d = Pareto::heavy_hitters(1_000_000);
        let mut rng = DetRng::new(9);
        let mut top = 0u64;
        let mut distinct = std::collections::HashSet::new();
        let n = 200_000;
        for _ in 0..n {
            let k = d.sample(&mut rng);
            assert!(k < 1_000_000);
            if k < 10 {
                top += 1;
            }
            distinct.insert(k);
        }
        let share = top as f64 / n as f64;
        assert!(share > 0.3, "top-10 keys draw {share} of traffic");
        assert!(distinct.len() > 1_000, "tail is long: {}", distinct.len());
    }

    #[test]
    fn deterministic_across_seeds() {
        let d = Zipf::new(1000, 0.8);
        let mut a = DetRng::new(5);
        let mut b = DetRng::new(5);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
