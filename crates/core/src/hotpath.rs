//! The batch-vectorized record hot path.
//!
//! Splits record processing out of [`crate::worker::SlashWorker`] so the
//! same loop the simulator charges virtual costs for can also be driven
//! raw by the wall-clock harness (`hotpath-bench`). Two data-path
//! optimizations live here:
//!
//! * **Write-combining pre-aggregation** — an L1-resident
//!   [`WriteCombiner`] folds a batch's updates into per-key partials and
//!   flushes once per batch via [`SsbNode::rmw_batch`], collapsing N
//!   index probes into one per *distinct* key per batch. Enabled only for
//!   states whose CRDT merge is exactly associative
//!   ([`slash_state::StateDescriptor::combinable`]); float-summing
//!   aggregations keep the per-record path so results stay bit-identical.
//! * **Batched appends** — join retention batches a whole input chunk's
//!   elements into one [`SsbNode::append_batch`] call, memoizing hashes
//!   and chain heads per distinct key.
//!
//! Both optimizations are **adaptive**: when a streak of batches shows
//! (almost) no key reuse — wide uniform key domains, where dedup is pure
//! overhead — the hot path reverts to the per-record loop for the rest of
//! the run. To keep the worst case cheap, the *first* combined batch also
//! probes reuse in-flight (`PROBE_SURVIVORS`) and can bail mid-batch,
//! so a reuse-free stream never pays combiner overhead beyond a small
//! prefix. Every decision depends only on the data, so runs stay
//! deterministic, and both paths produce bit-identical state either way.
//!
//! The hot path does *no* metrics or cost accounting — it returns a
//! [`BatchOutcome`] and the worker converts that into vectorized charges
//! (one `instr`/`charge` call per batch instead of per record).

use std::rc::Rc;

use slash_state::backend::SsbNode;
use slash_state::{pack_key, StateKey, WriteCombiner};

use crate::query::QueryPlan;
use crate::window::WindowMemo;

/// What one batch did, for vectorized cost accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOutcome {
    /// Records scanned (pipeline cost applies to all of them).
    pub records: u64,
    /// Records that survived the filter and touched state.
    pub survivors: u64,
    /// Distinct-key partials flushed from the combiner into the SSB
    /// (zero when the combiner is off; then survivors hit the SSB
    /// directly).
    pub flushed: u64,
    /// State value bytes written (join element payloads).
    pub value_bytes: u64,
    /// Timestamp of the last record scanned (timestamps are monotone
    /// per flow, so this is the batch's high-water mark).
    pub last_ts: u64,
}

impl BatchOutcome {
    /// Record the batch-level facts that don't need the per-record loop:
    /// the record count and the last record's timestamp. Hoisting these
    /// keeps the loops free of per-record bookkeeping stores.
    #[inline]
    fn note_batch(&mut self, schema: &crate::record::RecordSchema, batch: &[u8]) {
        let n = batch.len() / schema.size;
        self.records = n as u64;
        if n > 0 {
            self.last_ts = schema.ts(&batch[(n - 1) * schema.size..]);
        }
    }
}

/// Batches with too little key reuse before the hot path concludes
/// batching cannot pay and reverts to the per-record loop for the rest of
/// the run. Purely data-driven, so runs stay deterministic.
const COLD_BATCH_LIMIT: u32 = 1;
/// "Too little reuse": distinct keys ≥ 1/2 of survivors. Wall-clock
/// breakeven sits near 50% reuse — below it, the dedup pass costs more
/// than the saved index probes.
const COLD_NUM: u64 = 1;
const COLD_DEN: u64 = 2;
/// Batches smaller than this don't update the cold counter (too noisy).
const MIN_ADAPT_SURVIVORS: u64 = 64;
/// In the *first* combined batch, measure key reuse after this many
/// survivors and bail out mid-batch if the stream looks reuse-free. The
/// end-of-batch `note_reuse` check alone engages one full batch too late:
/// with 16 Ki-record batches a uniform-key stream pays combiner overhead
/// for thousands of folds before the first verdict, which showed up as a
/// ~7% regression on `ysb`. The probe caps that exposure at
/// [`PROBE_SURVIVORS`] folds for the whole run (≲2% of even a single
/// batch's survivors on the benched configurations).
const PROBE_SURVIVORS: u64 = 1024;
/// Probe verdict: bail when distinct keys so far ≥ 3/4 of survivors.
/// Stricter than the end-of-batch 1/2 on purpose — at 1024 survivors the
/// sample is small, and skewed streams (nb7's Pareto, ysb_hot's 100-key
/// domain) must not be misjudged from an unlucky prefix; both sit far
/// below 3/4 while uniform `ysb` saturates at ~100% distinct.
const PROBE_NUM: u64 = 3;
const PROBE_DEN: u64 = 4;

/// Reusable per-worker record-processing state.
pub struct HotPath {
    plan: Rc<QueryPlan>,
    /// `Some` iff this plan is a combinable aggregation and combining is
    /// enabled.
    combiner: Option<WriteCombiner>,
    /// Batch the join append path (always safe — byte-identical log).
    batch_join: bool,
    /// Scratch: record-order keys for `append_batch`.
    join_keys: Vec<StateKey>,
    /// Scratch: packed join elements, `1 + take` bytes each.
    join_elems: Vec<u8>,
    /// Consecutive batches with (almost) no key reuse; at
    /// [`COLD_BATCH_LIMIT`] the batched path turns itself off.
    cold_batches: u32,
    /// Whether the one-shot in-batch reuse probe has run (first combined
    /// batch only; see [`PROBE_SURVIVORS`]).
    probed: bool,
    /// Division-free window assignment (timestamps are monotone per flow).
    memo: WindowMemo,
    /// Split-ledger version this worker's salt map was built from; `0`
    /// (the ledger's "never split" value) keeps the refresh to a single
    /// compare per batch on unsplit runs.
    split_version: u64,
    /// `(canonical key, this node's sub-key)` pairs, ascending by
    /// canonical — binary-searched per record only when non-empty.
    split_map: Vec<(u64, u64)>,
}

/// Map a group key through the salt map: split keys divert to this
/// replica's sub-key, everything else passes through untouched.
#[inline]
fn salt(map: &[(u64, u64)], gk: u64) -> u64 {
    if map.is_empty() {
        return gk;
    }
    match map.binary_search_by_key(&gk, |p| p.0) {
        Ok(i) => map[i].1,
        Err(_) => gk,
    }
}

impl HotPath {
    /// Build the hot path for a plan. `combine` gates both optimizations;
    /// the combiner additionally requires the aggregation's CRDT to be
    /// exactly associative under regrouping.
    pub fn new(plan: Rc<QueryPlan>, combine: bool, combiner_slots: usize) -> Self {
        let combiner = match &*plan {
            QueryPlan::Aggregate { agg, .. } if combine => {
                let desc = agg.descriptor();
                if desc.combinable && !desc.is_appended() {
                    Some(WriteCombiner::new(desc, combiner_slots))
                } else {
                    None
                }
            }
            _ => None,
        };
        let batch_join = combine && matches!(&*plan, QueryPlan::Join { .. });
        let memo = WindowMemo::new(plan.window());
        HotPath {
            plan,
            combiner,
            batch_join,
            join_keys: Vec::new(),
            join_elems: Vec::new(),
            cold_batches: 0,
            probed: false,
            memo,
            split_version: 0,
            split_map: Vec::new(),
        }
    }

    /// Track key reuse: `unique` distinct keys out of `survivors` state
    /// touches this batch. A streak of reuse-free batches disables the
    /// batched path — on wide uniform key domains the dedup work is pure
    /// overhead, and these workloads' distributions are stationary.
    fn note_reuse(&mut self, survivors: u64, unique: u64) {
        if survivors < MIN_ADAPT_SURVIVORS {
            return;
        }
        if unique * COLD_DEN >= survivors * COLD_NUM {
            self.cold_batches += 1;
        } else {
            self.cold_batches = 0;
        }
    }

    /// Whether the write combiner is active for this plan.
    pub fn combined(&self) -> bool {
        self.combiner.is_some()
    }

    /// Process one batch of raw records against `ssb`.
    pub fn process(&mut self, ssb: &mut SsbNode, batch: &[u8]) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        match &*self.plan {
            QueryPlan::Aggregate {
                input,
                window: _,
                agg,
            } => {
                let schema = input.schema;
                // Hot-key splitting: refresh the salt map when the node's
                // ledger changed (one compare per batch; unsplit runs stay
                // at version 0 forever and never allocate).
                if ssb.split_version() != self.split_version {
                    self.split_version = ssb.split_version();
                    self.split_map = ssb.split_pairs();
                }
                let memo = &mut self.memo;
                out.note_batch(&schema, batch);
                if self.cold_batches >= COLD_BATCH_LIMIT {
                    self.combiner = None;
                }
                if let Some(comb) = self.combiner.as_mut() {
                    // Byte offset to resume from if the in-batch probe
                    // bails to the per-record loop mid-batch.
                    let mut bail_at: Option<usize> = None;
                    for (i, rec) in batch.chunks_exact(schema.size).enumerate() {
                        if !input.keep(rec) {
                            continue;
                        }
                        let key = pack_key(
                            memo.assign(schema.ts(rec)),
                            salt(&self.split_map, schema.key(rec)),
                        );
                        if !comb.fold(key, |v| agg.update(&schema, rec, v)) {
                            // Table at its fill limit: drain it and retry —
                            // the retry always lands (table now empty).
                            out.flushed += ssb.rmw_batch(comb);
                            comb.fold(key, |v| agg.update(&schema, rec, v));
                        }
                        out.survivors += 1;
                        if !self.probed && out.survivors == PROBE_SURVIVORS {
                            // One-shot reuse probe: distinct keys seen so
                            // far are the already-flushed partials plus the
                            // table's current occupancy.
                            self.probed = true;
                            let distinct = out.flushed + comb.len() as u64;
                            if distinct * PROBE_DEN >= out.survivors * PROBE_NUM {
                                out.flushed += ssb.rmw_batch(comb);
                                bail_at = Some((i + 1) * schema.size);
                                break;
                            }
                        }
                    }
                    if bail_at.is_none() {
                        out.flushed += ssb.rmw_batch(comb);
                    }
                    if let Some(off) = bail_at {
                        // Reuse-free stream: finish this batch (and the
                        // rest of the run) on the per-record path. State
                        // stays bit-identical — the flush above already
                        // applied every folded partial.
                        self.combiner = None;
                        for rec in batch[off..].chunks_exact(schema.size) {
                            if !input.keep(rec) {
                                continue;
                            }
                            let key = pack_key(
                                memo.assign(schema.ts(rec)),
                                salt(&self.split_map, schema.key(rec)),
                            );
                            ssb.rmw(key, |v| agg.update(&schema, rec, v));
                            out.survivors += 1;
                        }
                    } else {
                        self.note_reuse(out.survivors, out.flushed);
                    }
                } else {
                    for rec in batch.chunks_exact(schema.size) {
                        if !input.keep(rec) {
                            continue;
                        }
                        let key = pack_key(
                            memo.assign(schema.ts(rec)),
                            salt(&self.split_map, schema.key(rec)),
                        );
                        ssb.rmw(key, |v| agg.update(&schema, rec, v));
                        out.survivors += 1;
                    }
                }
            }
            QueryPlan::Join {
                input,
                side_off,
                window: _,
                retain_bytes,
            } => {
                let schema = input.schema;
                let take = (*retain_bytes).min(schema.size);
                let stride = 1 + take;
                let memo = &mut self.memo;
                out.note_batch(&schema, batch);
                if self.cold_batches >= COLD_BATCH_LIMIT {
                    self.batch_join = false;
                }
                if self.batch_join {
                    self.join_keys.clear();
                    self.join_elems.clear();
                    for rec in batch.chunks_exact(schema.size) {
                        if !input.keep(rec) {
                            continue;
                        }
                        let side = schema.field_u64(rec, *side_off);
                        self.join_keys
                            .push(pack_key(memo.assign(schema.ts(rec)), schema.key(rec)));
                        self.join_elems.push(side as u8);
                        self.join_elems.extend_from_slice(&rec[..take]);
                    }
                    let unique = ssb.append_batch(&self.join_keys, &self.join_elems, stride);
                    out.survivors = self.join_keys.len() as u64;
                    out.value_bytes = self.join_elems.len() as u64;
                    self.note_reuse(out.survivors, unique);
                } else {
                    let mut elem = vec![0u8; stride];
                    for rec in batch.chunks_exact(schema.size) {
                        if !input.keep(rec) {
                            continue;
                        }
                        let side = schema.field_u64(rec, *side_off);
                        elem[0] = side as u8;
                        elem[1..stride].copy_from_slice(&rec[..take]);
                        ssb.append(pack_key(memo.assign(schema.ts(rec)), schema.key(rec)), &elem);
                        out.survivors += 1;
                        out.value_bytes += stride as u64;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::StreamDef;
    use crate::record::RecordSchema;
    use crate::window::WindowAssigner;
    use crate::AggSpec;
    use slash_state::backend::{SsbConfig, SsbNode};

    const SCHEMA: RecordSchema = RecordSchema::plain(32);

    fn agg_plan(agg: AggSpec) -> Rc<QueryPlan> {
        Rc::new(QueryPlan::Aggregate {
            input: StreamDef::new(SCHEMA),
            window: WindowAssigner::Tumbling { size: 1_000_000 },
            agg,
        })
    }

    fn records(n: usize, key_domain: u64) -> Vec<u8> {
        let mut data = vec![0u8; n * SCHEMA.size];
        for (i, rec) in data.chunks_exact_mut(SCHEMA.size).enumerate() {
            let ts = i as u64 * 10;
            rec[SCHEMA.ts_off..SCHEMA.ts_off + 8].copy_from_slice(&ts.to_le_bytes());
            let key = (i as u64 * 7) % key_domain;
            rec[SCHEMA.key_off..SCHEMA.key_off + 8].copy_from_slice(&key.to_le_bytes());
        }
        data
    }

    fn detached(agg: &AggSpec) -> SsbNode {
        SsbNode::detached(0, agg.descriptor(), SsbConfig::new(1))
    }

    #[test]
    fn combiner_activates_only_for_combinable_aggregations() {
        assert!(HotPath::new(agg_plan(AggSpec::Count), true, 64).combined());
        assert!(!HotPath::new(agg_plan(AggSpec::Count), false, 64).combined());
        // Float mean is not exactly associative under regrouping.
        assert!(!HotPath::new(agg_plan(AggSpec::MeanF64 { off: 0 }), true, 64).combined());
    }

    #[test]
    fn combined_and_per_record_paths_agree_bitwise() {
        let plan = agg_plan(AggSpec::Count);
        let data = records(1000, 13);

        let mut on = HotPath::new(Rc::clone(&plan), true, 64);
        let mut off = HotPath::new(Rc::clone(&plan), false, 64);
        assert!(on.combined() && !off.combined());
        let mut ssb_on = detached(&AggSpec::Count);
        let mut ssb_off = detached(&AggSpec::Count);

        let mut sum = (0u64, 0u64);
        for chunk in data.chunks(SCHEMA.size * 128) {
            let a = on.process(&mut ssb_on, chunk);
            let b = off.process(&mut ssb_off, chunk);
            assert_eq!(a.records, b.records);
            assert_eq!(a.survivors, b.survivors);
            assert_eq!(a.last_ts, b.last_ts);
            sum.0 += a.flushed;
            sum.1 += b.flushed;
        }
        // Combiner flushed at most one partial per distinct key per batch;
        // the per-record path never flushes.
        assert!(sum.0 > 0 && sum.0 < 1000);
        assert_eq!(sum.1, 0);
        assert_eq!(ssb_on.state_digest(), ssb_off.state_digest());
    }

    #[test]
    fn reuse_free_streams_turn_the_combiner_off() {
        let plan = agg_plan(AggSpec::Count);
        // Key domain far wider than the record count: every key distinct.
        let data = records(2048, u64::MAX / 7);
        let mut hp = HotPath::new(Rc::clone(&plan), true, 4096);
        let mut ssb_a = detached(&AggSpec::Count);
        assert!(hp.combined());
        for chunk in data.chunks(SCHEMA.size * 256) {
            hp.process(&mut ssb_a, chunk);
        }
        assert!(!hp.combined(), "cold batches must disable the combiner");
        // Bit-identical to the never-combined run regardless.
        let mut off = HotPath::new(plan, false, 4096);
        let mut ssb_b = detached(&AggSpec::Count);
        off.process(&mut ssb_b, &data);
        assert_eq!(ssb_a.state_digest(), ssb_b.state_digest());
    }

    #[test]
    fn in_batch_probe_bails_mid_batch_on_reuse_free_streams() {
        let plan = agg_plan(AggSpec::Count);
        // One big batch, all keys distinct: the old end-of-batch check
        // would fold every record; the probe must stop at 1024 survivors.
        let data = records(4096, u64::MAX / 7);
        let mut hp = HotPath::new(Rc::clone(&plan), true, 4096);
        let mut ssb_a = detached(&AggSpec::Count);
        let out = hp.process(&mut ssb_a, &data);
        assert!(!hp.combined(), "probe must disable the combiner mid-batch");
        assert_eq!(out.records, 4096);
        assert_eq!(out.survivors, 4096);
        assert_eq!(
            out.flushed, 1024,
            "only the probe prefix goes through the combiner"
        );
        // Bit-identical to the never-combined run.
        let mut off = HotPath::new(plan, false, 4096);
        let mut ssb_b = detached(&AggSpec::Count);
        off.process(&mut ssb_b, &data);
        assert_eq!(ssb_a.state_digest(), ssb_b.state_digest());
    }

    #[test]
    fn in_batch_probe_keeps_skewed_streams_combined() {
        let plan = agg_plan(AggSpec::Count);
        // 101 distinct keys: at the probe point reuse is overwhelming,
        // so the combiner must stay on through and past the probe.
        let data = records(4096, 101);
        let mut hp = HotPath::new(Rc::clone(&plan), true, 4096);
        let mut ssb = detached(&AggSpec::Count);
        hp.process(&mut ssb, &data);
        assert!(hp.combined(), "skewed streams must keep the combiner");
    }

    #[test]
    fn combiner_flush_retry_survives_tiny_tables() {
        // Eight slots at a 3/4 fill limit force mid-batch flushes.
        let plan = agg_plan(AggSpec::Count);
        let data = records(500, 101);
        let mut tiny = HotPath::new(Rc::clone(&plan), true, 8);
        let mut off = HotPath::new(plan, false, 8);
        let mut ssb_a = detached(&AggSpec::Count);
        let mut ssb_b = detached(&AggSpec::Count);
        let a = tiny.process(&mut ssb_a, &data);
        let b = off.process(&mut ssb_b, &data);
        assert_eq!(a.survivors, b.survivors);
        assert_eq!(ssb_a.state_digest(), ssb_b.state_digest());
    }
}
