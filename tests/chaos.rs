//! Chaos golden tests: fault injection and recovery must be exactly as
//! deterministic as the healthy engine. Two runs with the same seed and
//! the same [`FaultPlan`] share every virtual-time decision — injection,
//! detection, promotion, replay — so their exported traces must be
//! *byte-identical* and their post-recovery state digests equal. And a
//! crash–restore–replay run must converge to exactly the state of the
//! fault-free run: the CRDT merges plus epoch-id dedup make replayed
//! deltas idempotent, so recovery is exact, not best-effort.

use slash::chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash::core::{RecoveryAction, RecoveryReport, RunConfig, RunReport, SlashCluster};
use slash::desim::SimTime;
use slash::obs::Obs;
use slash::workloads::{ysb, GenConfig};

const NODES: usize = 3;

fn run_config() -> RunConfig {
    let mut cfg = RunConfig::new(NODES, 1);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    cfg
}

fn chaos_config(plan: FaultPlan) -> ChaosConfig {
    ChaosConfig {
        plan,
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
        },
    }
}

fn chaos_run(plan: &FaultPlan, obs: Obs) -> (RunReport, RecoveryReport) {
    let w = ysb(&GenConfig::new(NODES, 20_000));
    SlashCluster::run_chaos(w.plan, w.partitions, run_config(), &chaos_config(plan.clone()), obs)
}

#[test]
fn same_seed_same_fault_plan_is_byte_identical() {
    let plan = FaultPlan::new().crash(SimTime::from_micros(200), 1);
    let run = || {
        let obs = Obs::enabled(16_384);
        let (report, rec) = chaos_run(&plan, obs.clone());
        (obs.chrome_trace_json(), report.records, rec)
    };
    let (json_a, records_a, rec_a) = run();
    let (json_b, records_b, rec_b) = run();
    assert_eq!(records_a, records_b);
    assert_eq!(
        rec_a.state_digests, rec_b.state_digests,
        "post-recovery state digests must be identical"
    );
    assert_eq!(rec_a.results_digest, rec_b.results_digest);
    assert_eq!(rec_a.events.len(), rec_b.events.len());
    assert_eq!(json_a, json_b, "chaos trace must be byte-identical");
    // The outage window is visible in the trace: injected fault events and
    // the recovery span both ride the fault category.
    assert!(json_a.contains("\"cat\":\"fault\""), "fault events traced");
    assert!(json_a.contains("\"name\":\"recovery\""), "recovery span traced");
}

#[test]
fn seeded_fault_plans_are_reproducible() {
    let within = SimTime::from_millis(2);
    let a = FaultPlan::seeded(42, NODES, 4, within);
    let b = FaultPlan::seeded(42, NODES, 4, within);
    assert_eq!(a, b, "same seed must build the same plan");
    assert_eq!(a.digest(), b.digest());
    let c = FaultPlan::seeded(43, NODES, 4, within);
    assert_ne!(a.digest(), c.digest(), "different seeds must diverge");
    assert_eq!(a.events().len(), 4);
}

/// The epoch-convergence-style exactness check: crash a leader mid-run,
/// restore from the durable epoch-aligned checkpoint, replay deltas from
/// the surviving helpers — and end bit-exactly where the no-fault run
/// ends. Replayed epochs are deduplicated by id and merged through CRDTs,
/// so nothing is lost and nothing is double-counted.
#[test]
fn crash_restore_replay_converges_to_no_fault_state() {
    let (base_report, base_rec) = chaos_run(&FaultPlan::new(), Obs::disabled());
    assert!(base_rec.events.is_empty(), "no-fault baseline repairs nothing");
    assert!(base_rec.checkpoints_durable > 0, "checkpoints must ship");
    let crash_at = SimTime::from_micros(200);
    assert!(
        base_report.completion_time > crash_at,
        "fault must land mid-run, not after completion"
    );

    let plan = FaultPlan::new().crash(crash_at, 1);
    let (report, rec) = chaos_run(&plan, Obs::disabled());
    let promoted = rec
        .events
        .iter()
        .find(|e| matches!(e.action, RecoveryAction::Promoted { .. }))
        .expect("the crash must be detected and repaired by promotion");
    assert_eq!(promoted.fault, "node-crash");
    assert_eq!(promoted.node, 1);
    assert!(promoted.time_to_recover() > SimTime::ZERO);

    // Exactness: same records processed, same per-window results, same
    // final primary state on every logical node.
    assert_eq!(report.records, base_report.records, "records lost or duplicated");
    assert_eq!(
        rec.results_digest, base_rec.results_digest,
        "window results diverged from the no-fault run"
    );
    assert_eq!(
        rec.state_digests, base_rec.state_digests,
        "post-recovery state diverged from the no-fault run"
    );
}
