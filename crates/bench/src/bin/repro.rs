//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro all                  # everything (writes CSVs to results/)
//! repro fig6 --query ysb     # one Fig. 6 sub-figure (ysb|cm|nb7|nb8|nb11)
//! repro fig7                 # COST analysis
//! repro fig8a | fig8b | fig8c | fig8d
//! repro fig9 | fig10 | table1
//! repro recovery             # fault-injection recovery latency + exactness
//! ```
//!
//! Scale knobs: `SLASH_WORKERS` (threads/node, default 4) and
//! `SLASH_RECORDS` (records/worker, default 20000).

use std::path::PathBuf;

use slash_bench::{ablation, fig6, fig7, fig8, fig9, recovery, rescale, Scale};
use slash_perfmodel::{format_table, write_csv, Table};

fn out_dir() -> PathBuf {
    std::env::var("SLASH_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn emit(t: &Table, csv_name: &str) {
    print!("{}", format_table(t));
    println!();
    let dir = out_dir();
    if let Err(e) = write_csv(t, &dir, csv_name) {
        eprintln!("warning: could not write {csv_name}: {e}");
    } else {
        println!("  -> {}/{csv_name}", dir.display());
    }
    println!();
}

fn run_fig6(query: &str, scale: Scale) {
    let points = fig6::run(query, scale, &fig6::NODE_COUNTS);
    emit(&fig6::table(query, &points), &format!("fig6_{query}.csv"));
}

fn run_fig7(scale: Scale) {
    let series: Vec<_> = fig7::QUERIES
        .iter()
        .map(|q| fig7::run(q, scale, &[2, 4, 8, 16]))
        .collect();
    emit(&fig7::table(&series), "fig7_cost.csv");
}

fn run_fig8ab(scale: Scale) {
    let points = fig8::run_buffer_sweep(scale, 2);
    emit(&fig8::table_8a(&points), "fig8a_buffer_throughput.csv");
    emit(&fig8::table_8b(&points), "fig8b_buffer_latency.csv");
}

fn run_fig8c(scale: Scale) {
    let threads: Vec<usize> = vec![1, 2, 4, 6, 8, 10];
    let points = fig8::run_parallelism_sweep(scale, &threads);
    emit(&fig8::table_8c(&points), "fig8c_parallelism.csv");
}

fn run_fig8d(scale: Scale) {
    let points = fig8::run_skew_sweep(scale, &fig8::SKEW_Z);
    emit(&fig8::table_8d(&points), "fig8d_skew.csv");
}

fn run_fig9(scale: Scale) {
    let rows = fig9::run_fig9(scale);
    emit(
        &fig9::breakdown_table("Fig. 9: execution breakdown, RO", &rows),
        "fig9_breakdown_ro.csv",
    );
}

fn run_fig10(scale: Scale) {
    let rows = fig9::run_fig10(scale);
    emit(
        &fig9::breakdown_table("Fig. 10: execution breakdown, YSB", &rows),
        "fig10_breakdown_ysb.csv",
    );
}

fn run_table1(scale: Scale) {
    let rows = fig9::run_table1(scale);
    emit(&fig9::table1_table(&rows), "table1_resources.csv");
}

fn run_recovery(scale: Scale) {
    let points = recovery::run(scale);
    emit(&recovery::table(&points), "recovery_latency.csv");
    if points.iter().any(|p| !p.exact || p.records_lost != 0) {
        eprintln!("warning: a fault run diverged from the no-fault baseline");
    }
}

fn run_rescale(scale: Scale) -> bool {
    let outcome = rescale::run(scale);
    emit(&rescale::table(&outcome), "rescale.csv");
    let budget = rescale::stall_budget("SLO.toml");
    if budget.is_none() {
        eprintln!("warning: SLO.toml has no [rescale] migration_stall_ns budget; stall not gated");
    }
    if let Err(e) = rescale::write_json(&outcome, "BENCH_rescale.json") {
        eprintln!("warning: could not write BENCH_rescale.json: {e}");
    } else {
        println!("  -> BENCH_rescale.json");
    }
    let violations = rescale::gate(&outcome, budget);
    if violations.is_empty() {
        println!("rescale gate: PASS");
        true
    } else {
        eprintln!("rescale gate: FAIL ({} violations)", violations.len());
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        false
    }
}

fn run_ablation(scale: Scale) {
    for (i, t) in ablation::run_all(scale).into_iter().enumerate() {
        emit(&t, &format!("ablation_{i}.csv"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    eprintln!(
        "# scale: {} workers/node, {} records/worker (override via SLASH_WORKERS/SLASH_RECORDS)",
        scale.workers, scale.records
    );

    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "all" => {
            for q in ["ysb", "cm", "nb7", "nb8", "nb11"] {
                run_fig6(q, scale);
            }
            run_fig7(scale);
            run_fig8ab(scale);
            run_fig8c(scale);
            run_fig8d(scale);
            run_fig9(scale);
            run_fig10(scale);
            run_table1(scale);
            run_ablation(scale);
            run_recovery(scale);
            if !run_rescale(scale) {
                std::process::exit(1);
            }
        }
        "fig6" => {
            let query = args
                .iter()
                .position(|a| a == "--query")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("ysb");
            run_fig6(query, scale);
        }
        "fig7" => run_fig7(scale),
        "fig8a" | "fig8b" => run_fig8ab(scale),
        "fig8c" => run_fig8c(scale),
        "fig8d" => run_fig8d(scale),
        "fig9" => run_fig9(scale),
        "fig10" => run_fig10(scale),
        "table1" => run_table1(scale),
        "ablation" => run_ablation(scale),
        "recovery" => run_recovery(scale),
        "rescale" => {
            if !run_rescale(scale) {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!(
                "usage: repro <all|fig6 [--query ysb|cm|nb7|nb8|nb11]|fig7|fig8a|fig8b|fig8c|fig8d|fig9|fig10|table1|ablation|recovery|rescale>"
            );
            std::process::exit(2);
        }
    }
}
