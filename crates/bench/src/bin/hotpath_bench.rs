//! `hotpath-bench` — real wall-clock throughput of the simulator hot loop.
//!
//! Every other number this repo produces is *virtual* time from the cost
//! model. This harness measures the one thing the cost model cannot: how
//! fast the actual Rust hot path (`HotPath::process` driving a detached
//! single-node SSB) executes on the machine running it, with the write
//! combiner on versus off.
//!
//! ```text
//! hotpath-bench                 # full run, writes BENCH_hotpath.json
//! hotpath-bench --quick         # CI smoke: fewer records/iterations
//! hotpath-bench --out FILE      # JSON destination
//! hotpath-bench --batch N       # records per processed batch
//! hotpath-bench --threads 1,2,4,8   # cluster scaling curve instead
//! ```
//!
//! Workloads: the five evaluation queries (ysb, cm, nb7, nb8, nb11) plus
//! `ysb_hot`, the classic ~100-campaign YSB domain where pre-aggregation
//! shines — that row carries the CI floor (combiner-on ≥ 1.3× off).
//! Rows whose state is not combinable (cm's float mean; the joins use the
//! batched-append path instead) are reported honestly at ~1×.
//!
//! ## `--threads` mode
//!
//! Runs the full engine (workers + SSB + delta channels) under the
//! thread-per-core backend (`slash-exec`) at each requested thread count,
//! weak-scaling the input (records per node fixed), and writes
//! `BENCH_threads.json`. Every configuration is cross-checked against the
//! deterministic simulator: per-node state digests must be bit-identical.
//! Two throughputs are reported per row — `records_per_sec` is the
//! modeled-cluster (virtual-time) rate, which scales with nodes by
//! design; `wall_records_per_sec` is host wall-clock and can only scale
//! when the host has at least as many physical cores as threads
//! (`host_cpus` is recorded alongside so the curve is interpretable).

use std::rc::Rc;
use std::time::Instant;

use slash_core::{
    results_digest, HeatPolicy, HotPath, QueryPlan, RunConfig, SlashCluster, SplitRunConfig,
};
use slash_desim::SimTime;
use slash_exec::{results_fingerprint, JobSpec, Scheduler, SimBackend, ThreadBackend};
use slash_obs::Obs;
use slash_state::backend::{SsbConfig, SsbNode};
use slash_workloads::{cm, nb11, nb7, nb8, ysb, ysb_hot, ysb_zipf_keyed, GenConfig, Workload};

/// Summary statistics over one mode's iteration samples (records/sec).
struct Stats {
    best: f64,
    min: f64,
    max: f64,
    stddev: f64,
}

fn stats(samples: &[f64]) -> Stats {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for &s in samples {
        min = min.min(s);
        max = max.max(s);
    }
    Stats {
        best: max,
        min: if min.is_finite() { min } else { 0.0 },
        max,
        stddev: var.sqrt(),
    }
}

/// Per-workload measurement of the combiner experiment.
struct Row {
    name: &'static str,
    combined_active: bool,
    records: u64,
    on: Stats,
    off: Stats,
    digests_match: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.off.best > 0.0 {
            self.on.best / self.off.best
        } else {
            0.0
        }
    }
}

/// One timed pass over `data`; returns (records/sec, state digest).
fn run_once(plan: &Rc<QueryPlan>, data: &[u8], combine: bool, batch_bytes: usize) -> (f64, u64) {
    let mut hp = HotPath::new(Rc::clone(plan), combine, 1024);
    let mut ssb = SsbNode::detached(0, plan.descriptor(), SsbConfig::new(1));
    let start = Instant::now();
    let mut records = 0u64;
    for chunk in data.chunks(batch_bytes) {
        records += hp.process(&mut ssb, chunk).records;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-12);
    (records as f64 / secs, ssb.state_digest())
}

fn bench_workload(w: &Workload, batch_records: usize, iters: usize) -> Row {
    let plan = Rc::new(w.plan.clone());
    let data: &[u8] = &w.partitions[0];
    let batch_bytes = batch_records * plan.record_size();
    // Warm-up pass per mode (page in the data, warm the allocator).
    run_once(&plan, data, true, batch_bytes);
    run_once(&plan, data, false, batch_bytes);
    // Interleave on/off passes so both modes sample the same machine
    // conditions (a noisy neighbor slows whichever mode is running);
    // best-of per side then filters scheduler and frequency noise, while
    // min/max/stddev record how noisy the samples actually were.
    let mut on_samples = Vec::with_capacity(iters);
    let mut off_samples = Vec::with_capacity(iters);
    let (mut digest_on, mut digest_off) = (0u64, 0u64);
    for _ in 0..iters {
        let (rps, d) = run_once(&plan, data, true, batch_bytes);
        on_samples.push(rps);
        digest_on = d;
        let (rps, d) = run_once(&plan, data, false, batch_bytes);
        off_samples.push(rps);
        digest_off = d;
    }
    let combined_active = HotPath::new(Rc::clone(&plan), true, 1024).combined();
    Row {
        name: w.name,
        combined_active,
        records: w.records,
        on: stats(&on_samples),
        off: stats(&off_samples),
        digests_match: digest_on == digest_off,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(path: &str, rows: &[Row], zipf: &[ZipfRow], batch_records: usize, quick: bool) {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"batch_records\": {batch_records},\n"));
    if !zipf.is_empty() {
        out.push_str("  \"zipf_sweep\": {\n");
        out.push_str(&format!("    \"nodes\": {ZIPF_NODES},\n"));
        out.push_str(
            "    \"note\": \"keyed-ingress ysb_zipf_keyed(theta); records_per_sec is the \
             modeled-cluster (virtual-time) rate. split_on enables online hot-key splitting \
             with record forwarding; digests_match compares results and per-node final state \
             against the unsplit run.\",\n",
        );
        out.push_str("    \"rows\": [\n");
        for (i, r) in zipf.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"theta\": {:.2}, \"records\": {}, \"hot_node_share\": {:.4}, \
                 \"records_per_sec_on\": {:.0}, \"records_per_sec_off\": {:.0}, \
                 \"speedup\": {:.3}, \"splits\": {}, \"forwarded_records\": {}, \
                 \"digests_match\": {}}}{}\n",
                r.theta,
                r.records,
                r.hot_node_share,
                r.on_rps,
                r.off_rps,
                r.speedup(),
                r.splits,
                r.forwarded_records,
                r.digests_match,
                if i + 1 < zipf.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  },\n");
    }
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"combined_active\": {}, \"records\": {}, \
             \"records_per_sec_on\": {:.0}, \"records_per_sec_off\": {:.0}, \
             \"on_min\": {:.0}, \"on_max\": {:.0}, \"on_stddev\": {:.0}, \
             \"off_min\": {:.0}, \"off_max\": {:.0}, \"off_stddev\": {:.0}, \
             \"speedup\": {:.3}, \"digests_match\": {}}}{}\n",
            json_escape(r.name),
            r.combined_active,
            r.records,
            r.on.best,
            r.off.best,
            r.on.min,
            r.on.max,
            r.on.stddev,
            r.off.min,
            r.off.max,
            r.off.stddev,
            r.speedup(),
            r.digests_match,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("  -> {path}");
}

// ---------------------------------------------------------------------
// --zipf mode: keyed-ingress skew sweep with online hot-key splitting.
// ---------------------------------------------------------------------

/// Cluster size of the skew sweep (the paper's testbed has 16 nodes; 12
/// keeps the quick sweep inside the CI time budget while leaving the hot
/// node's share far above 1/n).
const ZIPF_NODES: usize = 12;

/// One (theta, split-on/off) pair of the skew sweep.
struct ZipfRow {
    theta: f64,
    records: u64,
    /// Largest single partition's share of the input — the load the hot
    /// node would carry without splitting (1/nodes = perfectly balanced).
    hot_node_share: f64,
    on_rps: f64,
    off_rps: f64,
    splits: usize,
    forwarded_records: u64,
    digests_match: bool,
}

impl ZipfRow {
    fn speedup(&self) -> f64 {
        if self.off_rps > 0.0 {
            self.on_rps / self.off_rps
        } else {
            0.0
        }
    }
}

/// Run one theta of the sweep: the same keyed-ingress input through the
/// plain engine and through `run_split` with online detection + record
/// forwarding, cross-checking results and final state bit-for-bit.
fn bench_zipf(theta: f64, per_node_records: u64) -> ZipfRow {
    let w = ysb_zipf_keyed(&GenConfig::new(ZIPF_NODES, per_node_records), theta);
    let total_bytes: usize = w.partitions.iter().map(|p| p.len()).sum();
    let hot_node_share = w
        .partitions
        .iter()
        .map(|p| p.len())
        .max()
        .unwrap_or(0) as f64
        / (total_bytes.max(1)) as f64;
    let mut cfg = RunConfig::new(ZIPF_NODES, 1);
    cfg.collect_results = true;
    cfg.epoch_bytes = 64 * 1024;
    // The sweep isolates *data-plane* imbalance, so the write combiner is
    // off on both sides. With combining on, a skewed count-key is already
    // nearly free locally (§8.3.2: the combiner folds the hot key's
    // records to one RMW, which is also why skew *helps* Slash's state
    // plane — the combiner rows above measure that effect); what remains
    // unbalanced, and what splitting + forwarding actually fix, is the
    // per-record pipeline and state work that keyed ingress piles onto
    // one node.
    cfg.combine = false;

    let off = SlashCluster::run(w.plan.clone(), w.partitions.clone(), cfg);
    let scfg = SplitRunConfig {
        auto: Some(HeatPolicy {
            // Provably-hot floor at 4% of observed updates: under the
            // sweep's 10 k-key domain only genuinely skewed heads
            // qualify (uniform keys sit at 0.01%).
            hot_ppm: 40_000,
            min_total: 2_000,
            max_splits: 8,
        }),
        sample_every: SimTime::from_micros(20),
        forward: true,
        ..SplitRunConfig::default()
    };
    let (on, srep) =
        SlashCluster::run_split(w.plan.clone(), w.partitions.clone(), cfg, &scfg, Obs::disabled());
    let digests_match = on.records == off.records
        && on.emitted == off.emitted
        && results_digest(&on.results) == results_digest(&off.results)
        && on.state_digests == off.state_digests;
    ZipfRow {
        theta,
        records: w.records,
        hot_node_share,
        on_rps: on.throughput(),
        off_rps: off.throughput(),
        splits: srep.splits.len(),
        forwarded_records: srep.forwarded_records,
        digests_match,
    }
}

/// The thetas of the sweep: 0 (uniform control) through 1.5 (extreme
/// skew, hot key ≈ 38% of the stream).
const ZIPF_THETAS: [f64; 5] = [0.0, 0.5, 0.9, 1.1, 1.5];

fn run_zipf_sweep(quick: bool) -> Vec<ZipfRow> {
    let per_node_records: u64 = if quick { 60_000 } else { 150_000 };
    println!(
        "zipf sweep: {ZIPF_NODES} nodes, {per_node_records} records/node, keyed ingress \
         (quick={quick})"
    );
    println!(
        "{:<6} {:>9} {:>14} {:>14} {:>8} {:>7} {:>10}  digests",
        "theta", "hot share", "on recs/s", "off recs/s", "speedup", "splits", "forwarded"
    );
    let mut rows = Vec::new();
    for &theta in &ZIPF_THETAS {
        let row = bench_zipf(theta, per_node_records);
        println!(
            "{:<6.2} {:>8.1}% {:>14.0} {:>14.0} {:>7.2}x {:>7} {:>10}  {}",
            row.theta,
            100.0 * row.hot_node_share,
            row.on_rps,
            row.off_rps,
            row.speedup(),
            row.splits,
            row.forwarded_records,
            if row.digests_match { "match" } else { "MISMATCH" }
        );
        rows.push(row);
    }
    rows
}

// ---------------------------------------------------------------------
// --threads mode: cluster scaling under the thread-per-core backend.
// ---------------------------------------------------------------------

/// One (workload, thread-count) measurement.
struct ThreadRow {
    workload: &'static str,
    threads: usize,
    records: u64,
    /// Best-of-iters host wall-clock rate (scales only with real cores).
    wall_records_per_sec: f64,
    /// Wall seconds of the best pass.
    wall_secs: f64,
    /// Modeled-cluster rate: records / max per-node virtual ingest time.
    records_per_sec: f64,
    /// Sim-vs-threaded cross-check: per-node state digests, result
    /// fingerprints, and emission counts all bit-identical.
    digests_match: bool,
}

fn owned_partitions(w: Workload) -> Vec<Vec<u8>> {
    w.partitions
        .into_iter()
        .map(|p| Rc::try_unwrap(p).unwrap_or_else(|p| (*p).clone()))
        .collect()
}

fn bench_threads(
    name: &'static str,
    gen: impl Fn(&GenConfig) -> Workload,
    plan: impl Fn() -> QueryPlan + Send + Sync + Clone + 'static,
    threads: usize,
    per_node_records: u64,
    iters: usize,
) -> ThreadRow {
    // Weak scaling: records per node fixed, one worker loop per node —
    // the thread-per-core shape (node == pinned OS thread).
    let gc = GenConfig::new(threads, per_node_records);
    let mut cfg = RunConfig::new(threads, 1);
    cfg.collect_results = true;
    // 1 MiB epochs: enough delta traffic to exercise the links without
    // dominating the run.
    cfg.epoch_bytes = 1 << 20;
    let parts = owned_partitions(gen(&gc));

    // Reference semantics once per configuration.
    let sim = SimBackend.run(JobSpec::new(plan.clone(), parts.clone(), cfg));

    let mut best_rps = 0.0f64;
    let mut best_secs = f64::INFINITY;
    let mut virt_rps = 0.0f64;
    let mut digests_match = true;
    for _ in 0..iters {
        let start = Instant::now();
        let thr = ThreadBackend::new().run(JobSpec::new(plan.clone(), parts.clone(), cfg));
        let secs = start.elapsed().as_secs_f64().max(1e-12);
        let rps = thr.records as f64 / secs;
        if rps > best_rps {
            best_rps = rps;
            best_secs = secs;
        }
        virt_rps = virt_rps.max(thr.throughput());
        digests_match &= thr.state_digests == sim.state_digests
            && thr.records == sim.records
            && thr.emitted == sim.emitted
            && thr.total_pairs == sim.total_pairs
            && results_fingerprint(&thr.results) == results_fingerprint(&sim.results);
    }
    ThreadRow {
        workload: name,
        threads,
        records: (per_node_records) * threads as u64,
        wall_records_per_sec: best_rps,
        wall_secs: best_secs,
        records_per_sec: virt_rps,
        digests_match,
    }
}

fn write_threads_json(path: &str, rows: &[ThreadRow], per_node_records: u64, quick: bool) {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"records_per_node\": {per_node_records},\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(
        "  \"note\": \"weak scaling, one node per thread. records_per_sec is the \
         modeled-cluster (virtual-time) rate; wall_records_per_sec is host wall clock \
         and scales with threads only when host_cpus >= threads.\",\n",
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"records\": {}, \
             \"records_per_sec\": {:.0}, \"wall_records_per_sec\": {:.0}, \
             \"wall_secs\": {:.4}, \"digests_match\": {}}}{}\n",
            json_escape(r.workload),
            r.threads,
            r.records,
            r.records_per_sec,
            r.wall_records_per_sec,
            r.wall_secs,
            r.digests_match,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("error: could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("  -> {path}");
}

fn run_threads_mode(threads_list: &[usize], out_path: &str, quick: bool) {
    let per_node_records: u64 = if quick { 25_000 } else { 100_000 };
    let iters = if quick { 2 } else { 3 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "hotpath-bench --threads: {} records/node, best of {iters}, host_cpus={host_cpus} (quick={quick})",
        per_node_records
    );
    println!(
        "{:<8} {:>7} {:>14} {:>16} {:>10}  digests",
        "query", "threads", "recs/s(model)", "recs/s(wall)", "wall s"
    );
    let mut rows = Vec::new();
    for &t in threads_list {
        for (name, row) in [
            (
                "ysb_hot",
                bench_threads(
                    "ysb_hot",
                    ysb_hot,
                    || ysb_hot(&GenConfig::new(1, 1)).plan,
                    t,
                    per_node_records,
                    iters,
                ),
            ),
            (
                "nb7",
                bench_threads(
                    "nb7",
                    nb7,
                    || nb7(&GenConfig::new(1, 1)).plan,
                    t,
                    per_node_records,
                    iters,
                ),
            ),
        ] {
            println!(
                "{:<8} {:>7} {:>14.0} {:>16.0} {:>10.4}  {}",
                name,
                row.threads,
                row.records_per_sec,
                row.wall_records_per_sec,
                row.wall_secs,
                if row.digests_match { "match" } else { "MISMATCH" }
            );
            rows.push(row);
        }
    }
    write_threads_json(out_path, &rows, per_node_records, quick);

    // Hard checks: digests must match on every configuration, and the
    // modeled-cluster rate must scale ≥3x from 1 to 8 threads (weak
    // scaling leaves per-node work constant, so anything less means the
    // protocol serializes).
    let mut failed = false;
    for r in &rows {
        if !r.digests_match {
            eprintln!(
                "FAIL: {}@{} sim/threaded state digests diverge",
                r.workload, r.threads
            );
            failed = true;
        }
    }
    let rate = |w: &str, t: usize| {
        rows.iter()
            .find(|r| r.workload == w && r.threads == t)
            .map(|r| r.records_per_sec)
    };
    if let (Some(r1), Some(r8)) = (rate("ysb_hot", 1), rate("ysb_hot", 8)) {
        if r8 < 3.0 * r1 {
            eprintln!(
                "FAIL: ysb_hot modeled throughput at 8 threads ({r8:.0}/s) is below 3x \
                 the 1-thread rate ({r1:.0}/s)"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let mut quick = false;
    let mut out_path: Option<String> = None;
    // 16 Ki records per batch: the epoch-sized quanta workers process.
    // Combiner flush cost amortizes with batch size, so the reported
    // speedup is a function of this knob — it is recorded in the JSON.
    let mut batch_records = 16384usize;
    let mut records_override: Option<u64> = None;
    let mut threads_list: Option<Vec<usize>> = None;
    let mut zipf = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--zipf" => zipf = true,
            "--out" => out_path = args.next(),
            "--batch" => {
                batch_records = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(batch_records)
            }
            "--records" => records_override = args.next().and_then(|v| v.parse().ok()),
            "--threads" => {
                let list = args
                    .next()
                    .map(|v| {
                        v.split(',')
                            .filter_map(|t| t.trim().parse::<usize>().ok())
                            .filter(|&t| t > 0)
                            .collect::<Vec<_>>()
                    })
                    .unwrap_or_default();
                if list.is_empty() {
                    eprintln!("--threads needs a comma-separated list, e.g. 1,2,4,8");
                    std::process::exit(2);
                }
                threads_list = Some(list);
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: hotpath-bench [--quick] [--zipf] [--out FILE] [--batch N] \
                     [--records N] [--threads 1,2,4,8]"
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(list) = threads_list {
        let out = out_path.unwrap_or_else(|| String::from("BENCH_threads.json"));
        run_threads_mode(&list, &out, quick);
        return;
    }
    let out_path = out_path.unwrap_or_else(|| String::from("BENCH_hotpath.json"));

    // 400 k records keeps the dataset LLC-sized on repeat passes (less
    // sensitivity to neighbors' memory traffic); best-of-5 interleaved
    // passes filter scheduler and frequency noise.
    let (records, iters) = if quick { (200_000u64, 3) } else { (400_000u64, 5) };
    let records = records_override.unwrap_or(records);
    // NB8 records are 272 bytes — scale down so the dataset stays modest.
    let nb8_records = (records / 4).max(1);

    let gen = |n: u64| GenConfig::new(1, n);
    let workloads: Vec<Workload> = vec![
        ysb_hot(&gen(records)),
        ysb(&gen(records)),
        cm(&gen(records)),
        nb7(&gen(records)),
        nb8(&gen(nb8_records)),
        nb11(&gen(records)),
    ];

    println!(
        "hotpath-bench: {} records/workload, batch {} records, best of {} (quick={})",
        records, batch_records, iters, quick
    );
    println!(
        "{:<8} {:>9} {:>14} {:>14} {:>8}  digests",
        "query", "combiner", "on recs/s", "off recs/s", "speedup"
    );
    let mut rows = Vec::new();
    for w in &workloads {
        let row = bench_workload(w, batch_records, iters);
        println!(
            "{:<8} {:>9} {:>14.0} {:>14.0} {:>7.2}x  {}",
            row.name,
            if row.combined_active { "on" } else { "n/a" },
            row.on.best,
            row.off.best,
            row.speedup(),
            if row.digests_match { "match" } else { "MISMATCH" }
        );
        rows.push(row);
    }

    let zipf_rows = if zipf { run_zipf_sweep(quick) } else { Vec::new() };

    write_json(&out_path, &rows, &zipf_rows, batch_records, quick);

    // Hard checks: the two paths must agree bit-for-bit everywhere, and
    // combining must actually pay off on the hot YSB loop.
    let mut failed = false;
    for r in &rows {
        if !r.digests_match {
            eprintln!("FAIL: {} on/off state digests diverge", r.name);
            failed = true;
        }
    }
    // Skew-sweep gates: splitting must stay bit-exact on every swept
    // theta and must actually flatten the curve — split-on at theta=1.1
    // has to clear 1.5x split-off.
    for r in &zipf_rows {
        if !r.digests_match {
            eprintln!(
                "FAIL: zipf theta={:.2} split-on results/state diverge from unsplit",
                r.theta
            );
            failed = true;
        }
    }
    if let Some(r) = zipf_rows.iter().find(|r| (r.theta - 1.1).abs() < 1e-9) {
        let floor = 1.5;
        if r.speedup() < floor {
            eprintln!(
                "FAIL: zipf theta=1.1 split-on speedup {:.2}x below the {floor}x floor",
                r.speedup()
            );
            failed = true;
        }
    }
    if let Some(hot) = rows.iter().find(|r| r.name == "ysb_hot") {
        let floor = 1.3;
        if hot.speedup() < floor {
            eprintln!(
                "FAIL: ysb_hot combiner speedup {:.2}x below the {floor}x floor",
                hot.speedup()
            );
            failed = true;
        }
    }
    // The probe must keep reuse-free ysb within ~2% of the per-record
    // path (the regression this harness previously shipped at 0.93x) —
    // allow noise headroom below the nominal 0.98.
    if let Some(uni) = rows.iter().find(|r| r.name == "ysb") {
        let floor = 0.95;
        if uni.speedup() < floor {
            eprintln!(
                "FAIL: ysb combiner-on speedup {:.2}x below the {floor}x floor \
                 (cold-stream bypass is engaging too late)",
                uni.speedup()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
