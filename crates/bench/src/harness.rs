//! Minimal offline micro-benchmark harness.
//!
//! A self-contained replacement for the external `criterion` crate: the
//! repository must build and run with zero network access, so benches use
//! this ~100-line harness instead. It keeps the parts the benches need —
//! named benchmarks, throughput annotation, batched setup — and prints one
//! line per benchmark with mean wall-clock time per iteration plus derived
//! throughput.
//!
//! `cargo bench` invokes each bench binary with harness flags such as
//! `--bench`; unrecognized flags are ignored, and a bare string argument
//! filters benchmarks by substring (mirroring criterion's CLI).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How results are normalized in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Target measurement window per benchmark.
const TARGET: Duration = Duration::from_millis(200);
/// Never run more than this many iterations, however fast the routine is.
const MAX_ITERS: u64 = 1_000_000;

/// A registry of benchmarks; constructed once per bench binary.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Build the harness from the process arguments (`cargo bench` passes
    /// `--bench` and friends; a bare argument is a name filter).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Harness { filter }
    }

    fn skip(&self, name: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !name.contains(f))
    }

    /// Run one benchmark: call `routine` repeatedly for a fixed wall-clock
    /// window and report the mean time per iteration.
    pub fn bench(&mut self, name: &str, routine: impl FnMut()) {
        self.bench_throughput_opt(name, None, routine);
    }

    /// Like [`Harness::bench`] with a throughput annotation, so the report
    /// line also shows bytes/s or elements/s.
    pub fn bench_throughput(
        &mut self,
        name: &str,
        throughput: Throughput,
        routine: impl FnMut(),
    ) {
        self.bench_throughput_opt(name, Some(throughput), routine);
    }

    /// Run a benchmark whose routine needs a fresh input per iteration;
    /// `setup` is excluded from the measurement.
    pub fn bench_batched<T, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) {
        if self.skip(name) {
            return;
        }
        // Warm-up round (also primes caches/allocator).
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut busy = Duration::ZERO;
        while busy < TARGET && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            busy += start.elapsed();
            iters += 1;
        }
        report(name, busy, iters, None);
    }

    fn bench_throughput_opt(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        mut routine: impl FnMut(),
    ) {
        if self.skip(name) {
            return;
        }
        routine(); // warm-up
        let mut iters = 0u64;
        let start = Instant::now();
        let mut busy = Duration::ZERO;
        while busy < TARGET && iters < MAX_ITERS {
            routine();
            iters += 1;
            busy = start.elapsed();
        }
        report(name, busy, iters, throughput);
    }
}

fn report(name: &str, busy: Duration, iters: u64, throughput: Option<Throughput>) {
    let per_iter = busy.as_secs_f64() / iters as f64;
    let rate = |n: u64| n as f64 / per_iter;
    let extra = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {:>10.1} MB/s", rate(n) / 1e6),
        Some(Throughput::Elements(n)) => format!("  {:>10.0} elem/s", rate(n)),
        None => String::new(),
    };
    println!(
        "bench {name:<44} {:>12.3} µs/iter  ({iters} iters){extra}",
        per_iter * 1e6
    );
}
