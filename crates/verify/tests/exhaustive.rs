//! Integration tests for the bounded exhaustive model checker: literal
//! full enumeration of the 2-node FIFO/credit scenario, planted-mutant
//! detection with minimized counterexamples, and honest truncation
//! reporting on spaces that exceed the budget.

use slash_verify::explorer::Budget;
use slash_verify::scenarios::{ChannelScenario, Mutation, RecoveryScenario};

#[test]
fn small_channel_is_literally_fully_enumerated() {
    // Dedup off: the gate claims every distinct schedule was *run*, not
    // merely proven redundant at a converged state.
    let budget = Budget {
        state_dedup: false,
        ..Budget::default()
    };
    let rep = ChannelScenario::small().exhaustive("channel-small", budget, false);
    assert!(rep.clean(), "{}", rep.render_human());
    let c = &rep.coverage;
    assert!(c.complete(), "must drain the frontier: {}", rep.render_human());
    assert!(
        c.literal_full_enumeration(),
        "every distinct schedule must be run exactly once: {}",
        rep.render_human()
    );
    // The space is genuinely explored, not degenerate: the seed run alone
    // would be 1 schedule.
    assert!(
        c.schedules_enumerated > 1,
        "expected a branching space, got {}",
        c.schedules_enumerated
    );
    assert_eq!(c.schedules_enumerated, c.distinct_fingerprints);
}

#[test]
fn small_channel_dedup_prunes_converged_states_soundly() {
    // With the state-digest dedup on, provably-converged prefixes are
    // pruned: fewer runs, same verdict, frontier still drained.
    let with_dedup = ChannelScenario::small().exhaustive("dedup-on", Budget::default(), false);
    let without = ChannelScenario::small().exhaustive(
        "dedup-off",
        Budget {
            state_dedup: false,
            ..Budget::default()
        },
        false,
    );
    assert!(with_dedup.clean() && without.clean());
    assert!(with_dedup.coverage.complete());
    assert!(with_dedup.coverage.pruned_dedup > 0);
    assert!(
        with_dedup.coverage.schedules_enumerated < without.coverage.schedules_enumerated,
        "dedup must save runs: {} vs {}",
        with_dedup.coverage.schedules_enumerated,
        without.coverage.schedules_enumerated
    );
}

#[test]
fn exhaustive_catches_skipped_credit_ack_and_minimizes() {
    let s = ChannelScenario {
        mutation: Some(Mutation::SkipCreditReturn),
        ..ChannelScenario::small()
    };
    let rep = s.exhaustive("channel-small (skip-credit-return)", Budget::default(), true);
    assert!(!rep.clean(), "planted mutant must be caught");
    for ce in &rep.counterexamples {
        assert!(
            ce.minimized.len() < ce.first_schedule.len(),
            "minimized repro {:?} must be shorter than the first exposing \
             schedule ({} choices)",
            ce.minimized,
            ce.first_schedule.len()
        );
        // The minimized schedule must actually reproduce the violation.
        let (out, _) = s.run_schedule(&ce.minimized);
        assert!(
            out.violations.iter().any(|(i, _)| *i == ce.invariant),
            "minimized schedule {:?} does not reproduce {}",
            ce.minimized,
            ce.invariant.name()
        );
        assert!(!ce.dumps.is_empty(), "flight recorder must dump on the repro");
    }
}

#[test]
fn exhaustive_catches_same_qp_reorder_and_minimizes() {
    let s = ChannelScenario {
        mutation: Some(Mutation::ReorderDelivered),
        ..ChannelScenario::small()
    };
    let rep = s.exhaustive("channel-small (reorder-delivered)", Budget::default(), true);
    assert!(!rep.clean(), "planted same-QP reorder must be caught");
    for ce in &rep.counterexamples {
        assert!(
            ce.minimized.len() < ce.first_schedule.len(),
            "minimized repro {:?} vs first {} choices",
            ce.minimized,
            ce.first_schedule.len()
        );
        let (out, _) = s.run_schedule(&ce.minimized);
        assert!(out.violations.iter().any(|(i, _)| *i == ce.invariant));
    }
}

#[test]
fn exhaustive_finds_everything_the_random_sweep_finds() {
    // Every mutant the random 8-policy sweep exposes on the small config
    // must also fall to the exhaustive explorer.
    for m in [Mutation::SkipCreditReturn, Mutation::ReorderDelivered] {
        let s = ChannelScenario {
            mutation: Some(m),
            ..ChannelScenario::small()
        };
        let sweep = slash_verify::race::explore("sweep", 8, |p| s.run(p));
        let ex = s.exhaustive("exhaustive", Budget::default(), false);
        let sweep_invs: std::collections::BTreeSet<&str> =
            sweep.violations.iter().map(|v| v.invariant.name()).collect();
        let ex_invs: std::collections::BTreeSet<&str> = ex
            .counterexamples
            .iter()
            .map(|c| c.invariant.name())
            .collect();
        assert!(
            sweep_invs.is_subset(&ex_invs),
            "{m:?}: sweep found {sweep_invs:?} but exhaustive only {ex_invs:?}"
        );
    }
}

#[test]
fn recovery_small_completes_via_state_dedup() {
    // The literal schedule space of the 2-node crash-recovery scenario is
    // ~2^34 (34 binary branch points), far past any budget — but the
    // state-digest dedup recognizes that the tick interleavings converge,
    // and the explorer drains the reduced frontier completely.
    let rep = RecoveryScenario::small().exhaustive("recovery-small", Budget::default(), false);
    assert!(rep.clean(), "{}", rep.render_human());
    assert!(rep.coverage.complete(), "{}", rep.render_human());
    assert!(rep.coverage.pruned_dedup > 0);
}

#[test]
fn recovery_small_truncates_honestly_without_dedup() {
    // Same scenario, dedup off, tight budget: the explorer must report
    // the truncated frontier rather than claim completeness.
    let rep = RecoveryScenario::small().exhaustive(
        "recovery-small-literal",
        Budget {
            max_states: 64,
            max_schedules: 64,
            state_dedup: false,
            ..Budget::default()
        },
        false,
    );
    assert!(rep.clean(), "{}", rep.render_human());
    assert!(
        rep.coverage.frontier_truncated,
        "expected budget truncation, got: {}",
        rep.render_human()
    );
    assert!(!rep.coverage.complete());
}
