#!/usr/bin/env bash
# Full verification gate for the workspace. Run from anywhere inside the
# repo; every step is offline and deterministic. Order is cheapest-first
# so failures surface fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/10] build (release, all targets)"
cargo build --release --workspace

echo "==> [2/10] tests (unit + integration + fixtures + mutations)"
cargo test --workspace -q

echo "==> [3/10] clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/10] slash-lint (custom static analysis, burn-down allowlist)"
cargo run --release -p slash-verify --bin slash-lint

echo "==> [5/10] slash-race (schedule exploration smoke: 128 tie-breaks)"
cargo run --release -p slash-verify --bin slash-race -- --seeds 128

echo "==> [6/10] flight recorder (planted bug must be caught and dumped)"
cargo run --release -p slash-verify --bin slash-race -- --mutation ignore-credit-window >/dev/null
cargo run --release -p slash-verify --bin slash-race -- --mutation regress-vclock >/dev/null
echo "flight recorder: both planted bugs caught with dumps"

echo "==> [7/10] traced example (deterministic trace, validated JSON)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
SLASH_TRACE_OUT="$trace_dir/a.json" cargo run --release --example ysb_pipeline >/dev/null
SLASH_TRACE_OUT="$trace_dir/b.json" cargo run --release --example ysb_pipeline >/dev/null
cmp "$trace_dir/a.json" "$trace_dir/b.json"
echo "trace: two same-seed runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/a.json"

echo "==> [8/10] chaos suite (every fault type recovers to the no-fault state)"
cargo run --release --bin chaos-suite

echo "==> [9/10] recovery golden trace (failover example, byte-identical + validated)"
SLASH_TRACE_OUT="$trace_dir/f_a.json" cargo run --release --example failover >/dev/null
SLASH_TRACE_OUT="$trace_dir/f_b.json" cargo run --release --example failover >/dev/null
cmp "$trace_dir/f_a.json" "$trace_dir/f_b.json"
echo "recovery trace: two same-seed chaos runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/f_a.json"

echo "==> [10/10] hot-path perf smoke (wall-clock, combiner on vs off)"
# Writes BENCH_hotpath.json and exits non-zero if the combiner-on hot
# loop is below 1.3x the per-record path on ysb_hot, or if any
# workload's on/off state digests diverge.
cargo run --release -p slash-bench --bin hotpath-bench -- --quick --out BENCH_hotpath.json

echo "ci: all gates green"
