//! Property-based tests of the RDMA channel protocol (paper §6.2).
//!
//! The protocol's stated guarantees — FIFO delivery, no overwrites of
//! unread buffers, credit conservation, self-adjusting rate — must hold for
//! *every* interleaving of producer sends, consumer polls, and simulation
//! progress. Seeded loops over the deterministic `DetRng` generator drive
//! randomized schedules against the real channel over the real simulated
//! fabric; every failure reproduces from its printed seed, with no external
//! dependencies (the suite runs fully offline).

use slash_desim::{DetRng, Sim, SimTime};
use slash_net::{create_channel, ChannelConfig, MsgFlags};
use slash_rdma::{Fabric, FabricConfig};

/// One step of a randomized schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Producer attempts to send the next numbered message.
    Send,
    /// Consumer attempts to poll one message.
    Recv,
    /// Let the simulation advance by a bounded amount of virtual time.
    Advance(u32),
    /// Let the simulation run to quiescence.
    Drain,
}

/// Draw one schedule step with the same weights the proptest version used
/// (3 send : 3 recv : 2 advance : 1 drain).
fn draw_op(rng: &mut DetRng) -> Op {
    match rng.next_below(9) {
        0..=2 => Op::Send,
        3..=5 => Op::Recv,
        6..=7 => Op::Advance(1 + rng.next_below(9_999) as u32),
        _ => Op::Drain,
    }
}

/// Under any schedule: messages arrive in FIFO order with intact payloads,
/// and the credit invariant `in_flight = sent - consumed_acked <= c` holds
/// at every step.
#[test]
fn fifo_and_credit_conservation() {
    for seed in 0..128u64 {
        let mut rng = DetRng::new(0xC0FFEE ^ seed);
        let n_ops = 1 + rng.next_below(199) as usize;
        let credits = 1 + rng.next_below(11) as usize;
        let buf_size = 48 + rng.next_below(208) as usize;

        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let cfg = ChannelConfig { credits, buffer_size: buf_size, credit_batch: 1 };
        let (mut tx, mut rx) = create_channel(&fabric, a, b, cfg);

        let mut next_to_send = 0u64;
        let mut next_expected = 0u64;

        for _ in 0..n_ops {
            match draw_op(&mut rng) {
                Op::Send => {
                    let sent = tx
                        .try_send(&mut sim, MsgFlags::DATA, &next_to_send.to_le_bytes())
                        .unwrap();
                    if sent {
                        next_to_send += 1;
                    }
                    // Credit conservation: `credits() = c - in_flight` must
                    // stay within [0, c]. (`credits()` computes it with
                    // unsigned arithmetic, so an in_flight > c protocol bug
                    // would panic right here.)
                    assert!(tx.credits() <= credits, "seed {seed}");
                }
                Op::Recv => {
                    if let Some((flags, data)) = rx.try_recv(&mut sim).unwrap() {
                        assert_eq!(flags, MsgFlags::DATA, "seed {seed}");
                        let v = u64::from_le_bytes(data.as_slice().try_into().unwrap());
                        assert_eq!(v, next_expected, "FIFO order violated, seed {seed}");
                        next_expected += 1;
                    }
                }
                Op::Advance(ns) => {
                    let t = sim.now() + SimTime::from_nanos(ns as u64);
                    sim.run_until(t);
                }
                Op::Drain => {
                    sim.run();
                }
            }
        }

        // Drain everything that is still in flight.
        loop {
            sim.run();
            match rx.try_recv(&mut sim).unwrap() {
                Some((_, data)) => {
                    let v = u64::from_le_bytes(data.as_slice().try_into().unwrap());
                    assert_eq!(v, next_expected, "seed {seed}");
                    next_expected += 1;
                }
                None => break,
            }
        }
        assert_eq!(next_expected, next_to_send, "message lost, seed {seed}");
    }
}

/// A producer that retries on stall eventually delivers every message, no
/// matter the credit budget or buffer size: the channel is deadlock-free
/// under in-order consumption.
#[test]
fn no_deadlock_under_minimal_credits() {
    for seed in 0..64u64 {
        let mut rng = DetRng::new(0xD00D ^ seed);
        let n_msgs = 1 + rng.next_below(63);
        let credits = 1 + rng.next_below(3) as usize;
        let batch = (1 + rng.next_below(2) as usize).min(credits);

        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let cfg = ChannelConfig { credits, buffer_size: 64, credit_batch: batch };
        let (mut tx, mut rx) = create_channel(&fabric, a, b, cfg);

        let mut sent = 0u64;
        let mut got = 0u64;
        let mut spins = 0u32;
        while got < n_msgs {
            spins += 1;
            assert!(spins < 100_000, "protocol deadlocked, seed {seed}");
            if sent < n_msgs
                && tx.try_send(&mut sim, MsgFlags::DATA, &sent.to_le_bytes()).unwrap()
            {
                sent += 1;
            }
            sim.run();
            while let Some((_, data)) = rx.try_recv(&mut sim).unwrap() {
                let v = u64::from_le_bytes(data.as_slice().try_into().unwrap());
                assert_eq!(v, got, "seed {seed}");
                got += 1;
            }
            sim.run();
        }
        assert_eq!(got, n_msgs, "seed {seed}");
    }
}

/// Payload integrity: arbitrary binary payloads of arbitrary legal sizes
/// survive the trip bit-for-bit, including zero-length ones.
#[test]
fn payload_integrity() {
    for seed in 0..64u64 {
        let mut rng = DetRng::new(0xFACADE ^ seed);
        let n_payloads = 1 + rng.next_below(19) as usize;
        let payloads: Vec<Vec<u8>> = (0..n_payloads)
            .map(|_| {
                let len = rng.next_below(200) as usize;
                (0..len).map(|_| rng.next_u64() as u8).collect()
            })
            .collect();

        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let cfg = ChannelConfig { credits: 4, buffer_size: 256, credit_batch: 1 };
        let (mut tx, mut rx) = create_channel(&fabric, a, b, cfg);

        let mut received: Vec<Vec<u8>> = Vec::new();
        let mut it = payloads.iter();
        let mut pending: Option<&Vec<u8>> = it.next();
        let mut spins = 0;
        while received.len() < payloads.len() {
            spins += 1;
            assert!(spins < 100_000, "seed {seed}");
            if let Some(p) = pending {
                if tx.try_send(&mut sim, MsgFlags::DATA, p).unwrap() {
                    pending = it.next();
                }
            }
            sim.run();
            while let Some((_, data)) = rx.try_recv(&mut sim).unwrap() {
                received.push(data);
            }
            sim.run();
        }
        assert_eq!(received, payloads, "seed {seed}");
    }
}
