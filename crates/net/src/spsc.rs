//! In-process SPSC links for the threaded executor (`slash-exec`).
//!
//! When every node runs on its own OS thread, cross-host delta channels
//! cannot go through the simulated fabric (it is single-threaded by
//! design). This module provides the threaded equivalent: a bounded
//! single-producer/single-consumer FIFO per directed `(src, dst)` pair,
//! built on `std::sync::mpsc::sync_channel`.
//!
//! Two properties of the simulated RDMA channel are preserved exactly,
//! because the coherence protocol's correctness argument leans on them:
//!
//! * **Per-channel FIFO.** `sync_channel` delivers messages in send
//!   order — the same guarantee the RC fence in `rdma/qp.rs`
//!   (`fence_in_order`) enforces for same-QP writes. Epoch chunks and
//!   their `fin` markers arrive in the order the producer issued them.
//! * **Credit backpressure.** The queue bound equals the channel's
//!   credit count, so a producer that has `credits` buffers in flight
//!   sees `try_send` refuse — precisely when the simulated sender would
//!   stall on zero credits. Senders keep their outbox and retry, which
//!   is the same recovery path [`crate::ChannelSender`] takes.
//!
//! What is *not* modeled here: wire latency, bandwidth shaping, and
//! fault injection. Those belong to the deterministic simulator; the
//! threaded runtime measures real elapsed time instead.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError, TrySendError};

use crate::channel::ChannelConfig;
use crate::layout::MsgFlags;
use crate::stats::ChannelStats;

/// One message on an SPSC link: the flags word and the payload bytes
/// (what the footer + buffer carry on the simulated wire).
type SpscMsg = (MsgFlags, Vec<u8>);

/// Producer half of an in-process SPSC link.
#[derive(Debug)]
pub struct SpscSender {
    tx: SyncSender<SpscMsg>,
    cfg: ChannelConfig,
    stats: ChannelStats,
    /// Set when the consumer disappeared while traffic was still owed —
    /// the threaded analog of a QP falling into the error state.
    error: bool,
}

/// Consumer half of an in-process SPSC link.
#[derive(Debug)]
pub struct SpscReceiver {
    rx: Receiver<SpscMsg>,
    stats: ChannelStats,
}

/// Create a bounded SPSC link with `cfg.credits` slots of
/// `cfg.payload_capacity()` payload bytes each.
pub fn spsc_channel(cfg: ChannelConfig) -> (SpscSender, SpscReceiver) {
    let cfg = cfg.validated();
    let (tx, rx) = sync_channel(cfg.credits);
    (
        SpscSender {
            tx,
            cfg,
            stats: ChannelStats::default(),
            error: false,
        },
        SpscReceiver {
            rx,
            stats: ChannelStats::default(),
        },
    )
}

impl SpscSender {
    /// Payload capacity per message, matching the simulated channel's
    /// buffer payload so chunking logic is identical under both
    /// transports.
    pub fn payload_capacity(&self) -> usize {
        self.cfg.payload_capacity()
    }

    /// Try to enqueue one message. Returns `Ok(false)` when the link is
    /// at its credit bound (caller retries later, exactly like a
    /// credit-stalled RDMA send).
    pub fn try_send(&mut self, flags: MsgFlags, payload: &[u8]) -> bool {
        if self.error {
            return false;
        }
        match self.tx.try_send((flags, payload.to_vec())) {
            Ok(()) => {
                self.stats.on_buffer(payload.len());
                true
            }
            Err(TrySendError::Full(_)) => {
                self.stats.on_credit_stall();
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                // The peer thread is gone. Under the completion protocol
                // this cannot happen while data is still owed (a node
                // only exits once every peer's final epoch has merged),
                // so treat it as a dead QP and let the caller's
                // watchdog surface the bug if the protocol was violated.
                self.error = true;
                false
            }
        }
    }

    /// Whether the link observed a vanished consumer.
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// Transfer counters for this endpoint.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }
}

impl SpscReceiver {
    /// Dequeue one message if one is ready. Never blocks: the consumer
    /// polls from its worker loop like the simulated receiver does.
    pub fn try_recv(&mut self) -> Option<SpscMsg> {
        match self.rx.try_recv() {
            Ok(msg) => {
                self.stats.on_buffer(msg.1.len());
                Some(msg)
            }
            Err(TryRecvError::Empty) => {
                self.stats.on_empty_poll();
                None
            }
            // Producer exited after flushing everything it owed; the
            // buffered backlog (drained above) is already empty here.
            Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Transfer counters for this endpoint.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(credits: usize) -> ChannelConfig {
        ChannelConfig {
            credits,
            ..ChannelConfig::default()
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let (mut tx, mut rx) = spsc_channel(cfg(8));
        for i in 0..5u8 {
            assert!(tx.try_send(MsgFlags::STATE_DELTA, &[i]));
        }
        for i in 0..5u8 {
            let (_, payload) = rx.try_recv().expect("message ready");
            assert_eq!(payload, vec![i]);
        }
        assert!(rx.try_recv().is_none());
    }

    #[test]
    fn credit_bound_backpressures_like_the_simulated_channel() {
        let (mut tx, mut rx) = spsc_channel(cfg(2));
        assert!(tx.try_send(MsgFlags::STATE_DELTA, &[1]));
        assert!(tx.try_send(MsgFlags::STATE_DELTA, &[2]));
        // Third send exceeds the credit window.
        assert!(!tx.try_send(MsgFlags::STATE_DELTA, &[3]));
        assert_eq!(tx.stats().credit_stalls, 1);
        // Consuming one frees a credit.
        assert!(rx.try_recv().is_some());
        assert!(tx.try_send(MsgFlags::STATE_DELTA, &[3]));
        assert_eq!(tx.stats().buffers, 3);
    }

    #[test]
    fn cross_thread_delivery_keeps_order_and_counts() {
        let (mut tx, mut rx) = spsc_channel(cfg(4));
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            for i in 0..1000u32 {
                while !tx.try_send(MsgFlags::STATE_DELTA, &i.to_le_bytes()) {
                    std::thread::yield_now();
                }
                sent += 1;
            }
            sent
        });
        let mut expect = 0u32;
        while expect < 1000 {
            if let Some((_, payload)) = rx.try_recv() {
                let mut b = [0u8; 4];
                b.copy_from_slice(&payload);
                assert_eq!(u32::from_le_bytes(b), expect);
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(producer.join().expect("producer exits"), 1000);
    }

    #[test]
    fn vanished_consumer_reads_as_link_error() {
        let (mut tx, rx) = spsc_channel(cfg(2));
        drop(rx);
        assert!(!tx.try_send(MsgFlags::STATE_DELTA, &[1]));
        assert!(tx.is_error());
    }
}
