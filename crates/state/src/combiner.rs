//! Per-worker write-combining pre-aggregation (the batch-local half of
//! the Slash thesis: eager partial aggregation, lazy CRDT merge).
//!
//! A [`WriteCombiner`] is a small open-addressing hash table, sized to
//! stay L1-resident, keyed on the packed `(window, key)` state key. A
//! worker folds every surviving record of a batch into it with the
//! operator's update function, then flushes the *distinct* partials once
//! per batch through [`crate::backend::SsbNode::rmw_batch`], which merges
//! them into the SSB with the descriptor's CRDT merge. N per-record index
//! probes collapse into one probe per distinct key per batch.
//!
//! This regroups updates as `merge(state, fold(batch))` instead of
//! `fold(state, batch)` — semantics-preserving exactly when the CRDT's
//! update/merge pair is associative over the regrouping (see
//! [`crate::descriptor::StateDescriptor::combinable`]; float-summing
//! CRDTs opt out to keep combiner-on/off runs bit-identical).
//!
//! The table memoizes each key's [`crate::hash::hash_key`] with the MSB
//! forced on as the occupancy marker (a stored hash of 0 means "empty
//! slot"). The forced bit is harmless downstream: the index derives the
//! bucket from the *low* bits and its tag already ORs in the same top
//! bit, so the memoized hash probes identically to the raw one.

use crate::descriptor::StateDescriptor;
use crate::hash::{hash_key, StateKey};

/// Occupancy marker: stored hashes always carry the MSB, raw zero = empty.
const OCCUPIED: u64 = 1 << 63;

/// Fill beyond this fraction forces a flush before the next insert, keeping
/// probe chains short (the table never grows — it is sized once, for L1).
const MAX_FILL_NUM: usize = 3;
/// Denominator of the max-fill fraction.
const MAX_FILL_DEN: usize = 4;

/// A small, fixed-capacity open-addressing map from state key to a
/// batch-local partial CRDT value. See the module docs for the protocol.
pub struct WriteCombiner {
    desc: StateDescriptor,
    size: usize,
    mask: usize,
    /// Memoized `hash_key | OCCUPIED` per slot; 0 = empty.
    hashes: Vec<u64>,
    keys: Vec<StateKey>,
    /// Slot-major value storage, `capacity × size` bytes.
    values: Vec<u8>,
    /// Slots in insertion order — flush order is first-touch order, the
    /// same order the per-record path would first insert each key.
    order: Vec<u32>,
    /// Folds absorbed per slot since its last insert — the per-key weight
    /// the heat sketch observes at flush time.
    counts: Vec<u32>,
    folds: u64,
    inserts: u64,
}

impl WriteCombiner {
    /// Build a combiner with at least `slots` capacity (rounded up to a
    /// power of two) for fixed-size state described by `desc`.
    pub fn new(desc: StateDescriptor, slots: usize) -> Self {
        let cap = slots.max(8).next_power_of_two();
        let size = desc.fixed_size().max(1);
        WriteCombiner {
            desc,
            size,
            mask: cap - 1,
            hashes: vec![0; cap],
            keys: vec![0; cap],
            values: vec![0; cap * size],
            order: Vec::with_capacity(cap),
            counts: vec![0; cap],
            folds: 0,
            inserts: 0,
        }
    }

    /// Number of distinct keys currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no partials are buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total updates folded since construction (hits + inserts).
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Distinct-key insertions since construction (== flushed entries).
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Fold one update into the batch-local partial for `key`. Returns
    /// `false` — without touching anything — when the table is at its fill
    /// limit and `key` is absent: the caller must flush and retry.
    #[inline]
    pub fn fold(&mut self, key: StateKey, update: impl FnOnce(&mut [u8])) -> bool {
        let hash = hash_key(key) | OCCUPIED;
        let mut slot = (hash as usize) & self.mask;
        loop {
            let stored = self.hashes[slot];
            if stored == 0 {
                if self.order.len() * MAX_FILL_DEN >= (self.mask + 1) * MAX_FILL_NUM {
                    return false;
                }
                self.hashes[slot] = hash;
                self.keys[slot] = key;
                let value = &mut self.values[slot * self.size..(slot + 1) * self.size];
                (self.desc.init)(value);
                update(value);
                self.order.push(slot as u32);
                self.counts[slot] = 1;
                self.folds += 1;
                self.inserts += 1;
                return true;
            }
            if stored == hash && self.keys[slot] == key {
                update(&mut self.values[slot * self.size..(slot + 1) * self.size]);
                self.counts[slot] = self.counts[slot].saturating_add(1);
                self.folds += 1;
                return true;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// The `i`-th buffered partial in insertion order: `(key, memoized
    /// hash, value)`. `i` must be below [`Self::len`]; out-of-range reads
    /// return the last slot's view of an empty table guard — callers
    /// iterate `0..len()`.
    #[inline]
    pub fn entry(&self, i: usize) -> (StateKey, u64, &[u8]) {
        let slot = self.order.get(i).copied().unwrap_or_default() as usize;
        (
            self.keys[slot],
            self.hashes[slot],
            &self.values[slot * self.size..(slot + 1) * self.size],
        )
    }

    /// Folds absorbed into the `i`-th buffered partial since it was
    /// inserted (at least 1 for a live entry): the weight of that key
    /// within the current batch.
    #[inline]
    pub fn entry_folds(&self, i: usize) -> u64 {
        let slot = self.order.get(i).copied().unwrap_or_default() as usize;
        self.counts[slot] as u64
    }

    /// Drop all buffered partials (after a flush). Only occupied slots are
    /// touched, so clearing a lightly-used table is cheap.
    pub fn clear(&mut self) {
        for &slot in &self.order {
            self.hashes[slot as usize] = 0;
        }
        self.order.clear();
    }
}

impl std::fmt::Debug for WriteCombiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteCombiner")
            .field("capacity", &(self.mask + 1))
            .field("len", &self.order.len())
            .field("folds", &self.folds)
            .field("inserts", &self.inserts)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crdts::CounterCrdt;
    use crate::hash::pack_key;

    #[test]
    fn folds_dedupe_within_a_batch() {
        let mut c = WriteCombiner::new(CounterCrdt::descriptor(), 64);
        for i in 0..100u64 {
            assert!(c.fold(pack_key(1, i % 10), |v| CounterCrdt::add(v, 1)));
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.folds(), 100);
        assert_eq!(c.inserts(), 10);
        for i in 0..c.len() {
            let (_, h, v) = c.entry(i);
            assert_ne!(h, 0);
            assert_eq!(CounterCrdt::get(v), 10);
        }
    }

    #[test]
    fn entry_folds_count_per_key_weights() {
        let mut c = WriteCombiner::new(CounterCrdt::descriptor(), 64);
        // Key i % 3 receives 1 + the number of later multiples: key 0
        // folds 4 times (0,3,6,9), keys 1 and 2 fold 3 times each.
        for i in 0..10u64 {
            assert!(c.fold(pack_key(1, i % 3), |v| CounterCrdt::add(v, 1)));
        }
        let mut folds: Vec<(u64, u64)> = (0..c.len())
            .map(|i| (crate::hash::unpack_key(c.entry(i).0).1, c.entry_folds(i)))
            .collect();
        folds.sort_unstable();
        assert_eq!(folds, vec![(0, 4), (1, 3), (2, 3)]);
        // Clearing resets the weights: re-inserted keys start at one.
        c.clear();
        assert!(c.fold(pack_key(1, 0), |v| CounterCrdt::add(v, 1)));
        assert_eq!(c.entry_folds(0), 1);
    }

    #[test]
    fn insertion_order_is_first_touch_order() {
        let mut c = WriteCombiner::new(CounterCrdt::descriptor(), 64);
        for k in [7u64, 3, 7, 9, 3, 1] {
            assert!(c.fold(pack_key(0, k), |v| CounterCrdt::add(v, 1)));
        }
        let keys: Vec<StateKey> = (0..c.len()).map(|i| c.entry(i).0).collect();
        assert_eq!(
            keys,
            vec![pack_key(0, 7), pack_key(0, 3), pack_key(0, 9), pack_key(0, 1)]
        );
    }

    #[test]
    fn full_table_rejects_new_keys_but_takes_hits() {
        let mut c = WriteCombiner::new(CounterCrdt::descriptor(), 8);
        let mut k = 0u64;
        while c.fold(pack_key(0, k), |v| CounterCrdt::add(v, 1)) {
            k += 1;
        }
        // Capacity 8 at a 3/4 fill limit: six distinct keys fit.
        assert_eq!(c.len(), 6);
        // At the fill limit: existing keys still fold, new keys bounce.
        assert!(c.fold(pack_key(0, 0), |v| CounterCrdt::add(v, 1)));
        assert!(!c.fold(pack_key(0, k), |v| CounterCrdt::add(v, 1)));
        let len = c.len();
        c.clear();
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        // Cleared table accepts the bounced key again.
        assert!(c.fold(pack_key(0, k), |v| CounterCrdt::add(v, 1)));
        assert_eq!(c.len(), 1);
        assert!(len > 0);
    }

    #[test]
    fn memoized_hash_carries_the_occupancy_bit() {
        let mut c = WriteCombiner::new(CounterCrdt::descriptor(), 8);
        let key = pack_key(4, 2);
        assert!(c.fold(key, |v| CounterCrdt::add(v, 1)));
        let (k, h, _) = c.entry(0);
        assert_eq!(k, key);
        assert_eq!(h, hash_key(key) | OCCUPIED);
    }
}
