//! LightSaber-sim — the scale-up SPE of the COST analysis (paper §8.2.4).
//!
//! LightSaber targets a single multi-core node: task-based parallelism
//! over a **single shared task queue**, fused operator pipelines, and late
//! merge of thread-local partials — no networking, no epochs. Slash's
//! single-node execution already *is* a late-merge scale-up engine (its
//! epoch machinery is a no-op with one node: there are no remote
//! partitions to ship), so LightSaber-sim reuses the core engine on one
//! node and adds the shared-queue acquisition cost the paper contrasts
//! with Slash's per-worker queues (§5.3).
//!
//! LightSaber does not support joins (the paper's COST analysis therefore
//! uses YSB, CM, and NB7); this runner enforces that.

use std::rc::Rc;

use slash_core::{QueryPlan, RunConfig, SlashCluster};

use crate::sut::CommonReport;

/// Per-batch shared-task-queue cost. Scales with contending threads
/// (cache-line ping-pong on the queue head).
fn queue_contention_ns(threads: usize) -> f64 {
    18.0 * (threads as f64).log2().max(1.0)
}

/// LightSaber's run configuration for one node with `threads` workers.
pub fn lightsaber_config(threads: usize) -> RunConfig {
    let mut cfg = RunConfig::new(1, threads);
    cfg.cost.task_queue_ns = queue_contention_ns(threads);
    cfg
}

/// Run an aggregation query on LightSaber-sim (one node, `cfg.workers_per_node`
/// threads, one partition per thread).
pub fn run_lightsaber(
    plan: QueryPlan,
    partitions: Vec<Rc<Vec<u8>>>,
    cfg: RunConfig,
) -> CommonReport {
    assert_eq!(cfg.nodes, 1, "LightSaber is a single-node engine");
    assert!(
        matches!(plan, QueryPlan::Aggregate { .. }),
        "LightSaber does not support joins (paper §8.2.4)"
    );
    let report = SlashCluster::run(plan, partitions, cfg);
    CommonReport {
        records: report.records,
        processing_time: report.processing_time,
        completion_time: report.completion_time,
        emitted: report.emitted,
        total_pairs: report.total_pairs,
        results: report.results,
        sender_metrics: Default::default(),
        receiver_metrics: report.metrics,
        net_tx_bytes: report.net_tx_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_core::{AggSpec, RecordSchema, SinkResult, StreamDef, WindowAssigner};

    fn gen(n: u64) -> Rc<Vec<u8>> {
        let mut buf = Vec::new();
        for i in 0..n {
            buf.extend_from_slice(&(1 + i).to_le_bytes());
            buf.extend_from_slice(&(i % 8).to_le_bytes());
        }
        Rc::new(buf)
    }

    fn plan() -> QueryPlan {
        QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: 1000 },
            agg: AggSpec::Count,
        }
    }

    #[test]
    fn lightsaber_counts_correctly() {
        let mut cfg = lightsaber_config(2);
        cfg.collect_results = true;
        let report = run_lightsaber(plan(), vec![gen(2000), gen(2000)], cfg);
        assert_eq!(report.records, 4000);
        let total: f64 = report
            .results
            .iter()
            .map(|r| match r {
                SinkResult::Agg { value, .. } => *value,
                _ => 0.0,
            })
            .sum();
        assert_eq!(total as u64, 4000);
        assert_eq!(report.net_tx_bytes, 0, "no network on a single node");
    }

    #[test]
    #[should_panic(expected = "does not support joins")]
    fn joins_are_rejected() {
        let join = QueryPlan::Join {
            input: StreamDef::new(RecordSchema::plain(32)),
            side_off: 16,
            window: WindowAssigner::Tumbling { size: 1000 },
            retain_bytes: 16,
        };
        run_lightsaber(join, vec![gen(10)], lightsaber_config(1));
    }

    #[test]
    fn shared_queue_costs_grow_with_threads() {
        assert!(queue_contention_ns(10) > queue_contention_ns(2));
    }
}
