#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-chaos — deterministic fault injection
//!
//! The paper's epoch-aligned coherence protocol (§7) is the natural hook
//! for fault tolerance: state is replicated as epoch-delta streams, and
//! snapshots align with epoch boundaries. This crate supplies the *faults*
//! that recovery machinery is tested against — entirely deterministically.
//!
//! A [`FaultPlan`] is a schedule of fault events on virtual [`SimTime`]:
//! node crashes, NIC link flaps, link degradation, and delayed
//! completions. Plans are built explicitly with the builder methods or
//! generated from a [`slash_desim::DetRng`] seed ([`FaultPlan::seeded`]); either way the
//! plan is pure data, so two runs with the same seed and the same plan
//! execute byte-identically.
//!
//! [`Injector::arm`] schedules the fabric-level side of every event on the
//! simulator (via the `slash-rdma` fault hooks) and emits `Cat::Fault`
//! trace events so a Perfetto trace shows each outage window. Process-level
//! consequences (stopping a crashed node's workers, running recovery) are
//! the embedding engine's job — see `SlashCluster::run_chaos` in
//! `slash-core`.

pub mod inject;
pub mod plan;

pub use inject::Injector;
pub use plan::{FaultEvent, FaultKind, FaultPlan};

use slash_desim::SimTime;

/// Tunables of the recovery machinery an engine layers over a fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtConfig {
    /// How long a node's progress token may stall (as seen by its peers)
    /// before the driver diagnoses the node. Bounds detection latency,
    /// and with it time-to-recover.
    pub detect_timeout: SimTime,
    /// Chunk size for checkpoint snapshots (delta-format chunks).
    pub ckpt_max_chunk: usize,
    /// Durable checkpoint copies to maintain per node, each on a distinct
    /// buddy port where the cluster allows it. Recovery survives the loss
    /// of all but one copy holder at a given boundary; losing every real
    /// copy falls back to the epoch-0 seed copy (re-read the source from
    /// scratch), which is always valid.
    pub ckpt_copies: usize,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            detect_timeout: SimTime::from_millis(5),
            ckpt_max_chunk: 32 * 1024,
            ckpt_copies: 2,
        }
    }
}

/// A fault plan plus the recovery tunables to run it against.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// The faults to inject (empty = fault-tolerant no-fault baseline).
    pub plan: FaultPlan,
    /// Recovery tunables.
    pub ft: FtConfig,
    /// Group keys to hot-split before the first record (state-plane
    /// splitting only — chaos runs never forward records). The race
    /// families use this to prove split/fold commutes with crash
    /// promotion and planned handoff.
    pub pre_split: Vec<u64>,
}

impl ChaosConfig {
    /// Wrap a plan with default recovery tunables.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosConfig {
            plan,
            ft: FtConfig::default(),
            pre_split: Vec::new(),
        }
    }
}
