//! Figures 9 & 10 and Table 1: the micro-architecture drill-down.
//!
//! Fig. 9 breaks down the RO benchmark's execution into top-down
//! categories for UpPar's sender/receiver (2 and 10 threads) and Slash;
//! Fig. 10 does the same for YSB; Table 1 reports per-record resource
//! utilization on YSB at 2 nodes. All values are software proxies (see
//! `slash-perfmodel`); the paper's *relative* claims are what the
//! integration tests assert.

use slash_perfmodel::{breakdown_row, format_table, table1_row, BreakdownRow, Table, Table1Row};
use slash_workloads::{ro, ysb};

use crate::micro::{run_micro, MicroConfig, RouteMode};
use crate::scale::Scale;
use crate::suts;

/// Fig. 9: execution breakdown of RO at two thread counts.
pub fn run_fig9(scale: Scale) -> Vec<BreakdownRow> {
    let mut rows = Vec::new();
    for threads in [2usize, scale.workers.max(4)] {
        let mut cfg = MicroConfig::new(RouteMode::HashFanout, threads);
        cfg.records_per_thread = scale.records.max(20_000);
        let fanout = run_micro(cfg);
        rows.push(breakdown_row(
            format!("uppar snd ({threads}thr)"),
            &fanout.sender_metrics,
        ));
        rows.push(breakdown_row(
            format!("uppar rcv ({threads}thr)"),
            &fanout.receiver_metrics,
        ));
        let mut cfg = MicroConfig::new(RouteMode::Direct, threads);
        cfg.records_per_thread = scale.records.max(20_000);
        let direct = run_micro(cfg);
        rows.push(breakdown_row(
            format!("slash snd ({threads}thr)"),
            &direct.sender_metrics,
        ));
        rows.push(breakdown_row(
            format!("slash rcv ({threads}thr)"),
            &direct.receiver_metrics,
        ));
    }
    rows
}

/// Fig. 10: execution breakdown of YSB on the full engines at 2 nodes.
pub fn run_fig10(scale: Scale) -> Vec<BreakdownRow> {
    let u = suts::uppar(ysb, 2, scale);
    let s = suts::slash(ysb, 2, scale);
    vec![
        breakdown_row("uppar sender", &u.sender_metrics),
        breakdown_row("uppar receiver", &u.receiver_metrics),
        breakdown_row("slash", &s.receiver_metrics),
    ]
}

/// Table 1: per-record resource utilization on YSB at 2 nodes.
pub fn run_table1(scale: Scale) -> Vec<Table1Row> {
    let u = suts::uppar(ysb, 2, scale);
    let s = suts::slash(ysb, 2, scale);
    vec![
        table1_row("uppar sender", &u.sender_metrics, u.processing_time),
        table1_row("uppar receiver", &u.receiver_metrics, u.processing_time),
        table1_row("slash", &s.receiver_metrics, s.processing_time),
    ]
}

/// Also exercised with RO to match the paper's §8.3.3 setup.
pub fn run_table1_ro(scale: Scale) -> Vec<Table1Row> {
    let u = suts::uppar(ro, 2, scale);
    let s = suts::slash(ro, 2, scale);
    vec![
        table1_row("uppar sender (ro)", &u.sender_metrics, u.processing_time),
        table1_row("uppar receiver (ro)", &u.receiver_metrics, u.processing_time),
        table1_row("slash (ro)", &s.receiver_metrics, s.processing_time),
    ]
}

/// Render breakdown rows.
pub fn breakdown_table(title: &str, rows: &[BreakdownRow]) -> Table {
    let mut t = Table::new(
        title.to_string(),
        &["role", "retiring", "front-end", "mem-bound", "core-bound", "bad-spec", "dominant"],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            format!("{:.0}%", r.retiring * 100.0),
            format!("{:.0}%", r.front_end * 100.0),
            format!("{:.0}%", r.memory_bound * 100.0),
            format!("{:.0}%", r.core_bound * 100.0),
            format!("{:.0}%", r.bad_speculation * 100.0),
            r.dominant().to_string(),
        ]);
    }
    t
}

/// Render Table 1.
pub fn table1_table(rows: &[Table1Row]) -> Table {
    let mut t = Table::new(
        "Table 1: resource utilization on YSB, 2 nodes (software proxies)",
        &["role", "IPC", "instr/rec", "cyc/rec", "L1d/rec", "L2/rec", "LLC/rec", "mem GB/s"],
    );
    for r in rows {
        t.row(vec![
            r.label.clone(),
            format!("{:.2}", r.ipc),
            format!("{:.0}", r.instr_per_rec),
            format!("{:.0}", r.cyc_per_rec),
            format!("{:.2}", r.l1_per_rec),
            format!("{:.2}", r.l2_per_rec),
            format!("{:.2}", r.llc_per_rec),
            format!("{:.1}", r.mem_bw_gbs),
        ]);
    }
    t
}

/// Convenience: print Fig. 9 + Fig. 10 + Table 1 at once.
pub fn render_all(scale: Scale) -> String {
    let mut out = String::new();
    out.push_str(&format_table(&breakdown_table(
        "Fig. 9: execution breakdown, RO",
        &run_fig9(scale),
    )));
    out.push('\n');
    out.push_str(&format_table(&breakdown_table(
        "Fig. 10: execution breakdown, YSB",
        &run_fig10(scale),
    )));
    out.push('\n');
    out.push_str(&format_table(&table1_table(&run_table1(scale))));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_relative_claims_hold() {
        let rows = run_fig10(Scale::tiny());
        let uppar_snd = &rows[0];
        let slash = &rows[2];
        // The paper: UpPar's sender suffers front-end stalls; Slash is
        // primarily memory-bound and barely mispredicts.
        assert!(
            uppar_snd.front_end > slash.front_end,
            "uppar snd FE {:.2} vs slash {:.2}",
            uppar_snd.front_end,
            slash.front_end
        );
        assert_eq!(slash.dominant(), "memory-bound");
        assert!(slash.bad_speculation < 0.05);
    }

    #[test]
    fn table1_relative_claims_hold() {
        let rows = run_table1(Scale::tiny());
        let uppar_snd = &rows[0];
        let slash = &rows[2];
        // Slash needs far fewer instructions and cycles per record and
        // has a much higher aggregate memory bandwidth. (The paper's
        // Table 1 ratio is ~4x; the proxy counters land >1.6x because the
        // sender's filter drops 2/3 of YSB records before partitioning.)
        assert!(slash.instr_per_rec < uppar_snd.instr_per_rec / 1.6);
        assert!(slash.cyc_per_rec < uppar_snd.cyc_per_rec);
        assert!(slash.mem_bw_gbs > uppar_snd.mem_bw_gbs);
        assert!(slash.ipc > uppar_snd.ipc);
    }
}
