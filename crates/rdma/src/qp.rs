//! Reliable-connection queue pairs.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use slash_desim::{EventLabel, Sim, SimTime};

use crate::cq::{Completion, CompletionKind, CompletionStatus, CqHandle};
use crate::error::{RdmaError, Result};
use crate::fabric::{Fabric, NodeId};
use crate::verbs::{RecvWr, WorkRequest};

/// Maximum SENDs buffered on the responder while no receive is posted.
/// Models the RNR-retry budget of a reliable connection; protocol code that
/// exceeds it has a flow-control bug and fails loudly.
const MAX_PENDING_SENDS: usize = 1024;

/// Per-endpoint state shared between the local QP handle and delivery
/// events targeting it.
pub(crate) struct QpShared {
    send_cq: CqHandle,
    recv_cq: CqHandle,
    posted_recvs: VecDeque<RecvWr>,
    /// Inbound SENDs awaiting a posted receive: (sender's completion ticket,
    /// payload).
    pending_sends: VecDeque<(Option<PendingAck>, Vec<u8>)>,
    /// The endpoint is in the error state: a work request was flushed.
    /// Further posts are rejected until [`Qp::reset`].
    error: bool,
    /// Connection incarnation. Bumped by [`Qp::reset`]; in-flight delivery
    /// events capture the incarnation at post time and become no-ops if it
    /// changed (fencing stale traffic across a re-establishment).
    generation: u64,
    /// Delivery time of the last outbound work request posted from this
    /// endpoint. RC delivers in post order; with multi-port NICs the rails
    /// stripe messages independently and a later message could otherwise
    /// finish first, so every delivery is fenced behind its predecessor
    /// (as the responder's reorder logic would on real bonded fabrics).
    last_delivery: SimTime,
}

/// A sender-side completion owed once the responder consumes the message.
pub(crate) struct PendingAck {
    cq: CqHandle,
    completion: Completion,
}

impl QpShared {
    pub(crate) fn new(send_cq: CqHandle, recv_cq: CqHandle) -> Self {
        QpShared {
            send_cq,
            recv_cq,
            posted_recvs: VecDeque::new(),
            pending_sends: VecDeque::new(),
            error: false,
            generation: 0,
            last_delivery: SimTime::ZERO,
        }
    }
}

/// The connection incarnation a delivery event must match to take effect:
/// both endpoints' generations at post time.
fn conn_generation(a: &Rc<RefCell<QpShared>>, b: &Rc<RefCell<QpShared>>) -> (u64, u64) {
    (a.borrow().generation, b.borrow().generation)
}

/// One endpoint of a reliable connection.
///
/// All verbs are posted through [`Qp::post_send`] / [`Qp::post_recv`];
/// completions surface on the completion queues supplied at connect time.
/// Work requests on one QP complete in post order (RC ordering).
#[derive(Clone)]
pub struct Qp {
    fabric: Fabric,
    local_node: NodeId,
    peer_node: NodeId,
    local: Rc<RefCell<QpShared>>,
    peer: Rc<RefCell<QpShared>>,
}

impl Qp {
    pub(crate) fn new(
        fabric: Fabric,
        local_node: NodeId,
        peer_node: NodeId,
        local: Rc<RefCell<QpShared>>,
        peer: Rc<RefCell<QpShared>>,
    ) -> Self {
        Qp {
            fabric,
            local_node,
            peer_node,
            local,
            peer,
        }
    }

    /// The node this endpoint lives on.
    pub fn local_node(&self) -> NodeId {
        self.local_node
    }

    /// The node at the other end.
    pub fn peer_node(&self) -> NodeId {
        self.peer_node
    }

    /// Whether this endpoint is in the error state (a work request was
    /// flushed). An errored QP rejects further posts until [`Qp::reset`].
    pub fn is_error(&self) -> bool {
        self.local.borrow().error
    }

    /// Reset this endpoint after a fault: clear the error state, drop all
    /// queued receive buffers and parked inbound SENDs, and bump the
    /// connection incarnation so every still-in-flight delivery targeting
    /// the old incarnation is fenced (silently dropped, exactly like
    /// traffic arriving for a torn-down QP number).
    ///
    /// Both endpoints of a connection must be reset to resume traffic.
    pub fn reset(&self) {
        let mut local = self.local.borrow_mut();
        local.error = false;
        local.generation += 1;
        local.posted_recvs.clear();
        local.pending_sends.clear();
    }

    /// Post a receive buffer. If SENDs are already waiting (the sender ran
    /// ahead of us), the oldest is consumed immediately.
    pub fn post_recv(&self, sim: &mut Sim, wr: RecvWr) -> Result<()> {
        wr.local.mr.check(wr.local.offset, wr.local.len)?;
        let mut local = self.local.borrow_mut();
        if let Some((ack, payload)) = local.pending_sends.pop_front() {
            if payload.len() > wr.local.len {
                // Put it back; the protocol must post a bigger buffer.
                let needed = payload.len();
                local.pending_sends.push_front((ack, payload));
                return Err(RdmaError::RecvBufferTooSmall {
                    needed,
                    got: wr.local.len,
                });
            }
            // Bounds were checked above (payload fits the buffer and the
            // buffer range was validated); a failed write is unreachable
            // but total: restore the parked SEND and report the error.
            if let Err(e) = wr.local.mr.write(wr.local.offset, &payload) {
                local.pending_sends.push_front((ack, payload));
                return Err(e);
            }
            let recv_cq = local.recv_cq.clone();
            drop(local);
            recv_cq.push(
                sim,
                Completion {
                    wr_id: wr.wr_id,
                    kind: CompletionKind::Recv,
                    byte_len: payload.len(),
                    imm: None,
                    status: CompletionStatus::Success,
                },
            );
            if let Some(ack) = ack {
                ack.cq.push(sim, ack.completion);
            }
        } else {
            local.posted_recvs.push_back(wr);
        }
        Ok(())
    }

    /// Fence a planned delivery behind this QP's previous one: RC delivers
    /// in post order, and multi-rail striping must not reorder messages of
    /// the same connection. Single-port fabrics serialize on the link, so
    /// the fence is a no-op there.
    fn fence_in_order(&self, planned: SimTime) -> SimTime {
        let mut local = self.local.borrow_mut();
        let at = if planned > local.last_delivery {
            planned
        } else {
            local.last_delivery + SimTime::from_nanos(1)
        };
        local.last_delivery = at;
        at
    }

    /// Flush a signaled work request: schedule its error completion after
    /// the ack latency, exactly when a healthy completion would have been
    /// visible at the earliest.
    fn flush_signaled(
        &self,
        sim: &mut Sim,
        wr_id: u64,
        kind: CompletionKind,
        byte_len: usize,
    ) {
        let send_cq = self.local.borrow().send_cq.clone();
        let at = sim.now() + self.fabric.ack_latency();
        let label = EventLabel::channel(self.local_node.0, self.peer_node.0);
        sim.schedule_at_labeled(at, label, move |sim| {
            send_cq.push(
                sim,
                Completion {
                    wr_id,
                    kind,
                    byte_len,
                    imm: None,
                    status: CompletionStatus::FlushErr,
                },
            );
        });
    }

    /// Post a send-queue work request. Validation happens eagerly; the
    /// operation's effects materialize at its (bandwidth-paced) delivery
    /// time.
    ///
    /// Fault semantics: posting to an errored QP fails with
    /// [`RdmaError::QpError`]. If the path to the peer is down at post time
    /// the request is accepted but immediately *flushed* — signaled requests
    /// produce a [`CompletionStatus::FlushErr`] completion and the QP moves
    /// to the error state, like a real RC exhausting its retry budget. A
    /// fault landing while the request is in flight flushes it at delivery
    /// time instead.
    pub fn post_send(&self, sim: &mut Sim, wr: WorkRequest) -> Result<()> {
        if self.local.borrow().error {
            return Err(RdmaError::QpError);
        }
        let path_up = self.fabric.path_up(self.local_node, self.peer_node);
        match wr {
            WorkRequest::Write {
                wr_id,
                local,
                remote,
                signaled,
            } => {
                local.mr.check(local.offset, local.len)?;
                let remote_mr = self.fabric.resolve(remote.key)?;
                remote_mr.check(remote.offset, local.len)?;
                let payload =
                    local.mr.with(local.offset, local.len, |s| s.to_vec())?;
                let nbytes = payload.len();
                if !path_up {
                    self.local.borrow_mut().error = true;
                    if signaled {
                        self.flush_signaled(sim, wr_id, CompletionKind::Write, nbytes);
                    }
                    return Ok(());
                }
                let deliver_at = self.fence_in_order(self.fabric.plan(
                    sim.now(),
                    self.local_node,
                    self.peer_node,
                    local.len as u64,
                ));
                let ack_at = deliver_at + self.fabric.ack_latency();
                let send_cq = self.local.borrow().send_cq.clone();
                let fabric = self.fabric.clone();
                let gen = conn_generation(&self.local, &self.peer);
                let (local_sh, peer_sh) = (Rc::clone(&self.local), Rc::clone(&self.peer));
                let (src, dst) = (self.local_node, self.peer_node);
                sim.schedule_at_labeled(deliver_at, EventLabel::channel(src.0, dst.0), move |sim| {
                    if conn_generation(&local_sh, &peer_sh) != gen {
                        return; // connection was reset mid-flight: fenced
                    }
                    let ok = fabric.path_up(src, dst)
                        && remote_mr.write(remote.offset, &payload).is_ok();
                    if !ok {
                        local_sh.borrow_mut().error = true;
                    }
                    if signaled {
                        let status = if ok {
                            CompletionStatus::Success
                        } else {
                            CompletionStatus::FlushErr
                        };
                        sim.schedule_at_labeled(ack_at, EventLabel::channel(src.0, dst.0), move |sim| {
                            send_cq.push(
                                sim,
                                Completion {
                                    wr_id,
                                    kind: CompletionKind::Write,
                                    byte_len: nbytes,
                                    imm: None,
                                    status,
                                },
                            );
                        });
                    }
                });
                Ok(())
            }
            WorkRequest::WriteImm {
                wr_id,
                local,
                remote,
                imm,
                signaled,
            } => {
                local.mr.check(local.offset, local.len)?;
                let remote_mr = self.fabric.resolve(remote.key)?;
                remote_mr.check(remote.offset, local.len)?;
                let payload =
                    local.mr.with(local.offset, local.len, |s| s.to_vec())?;
                let nbytes = payload.len();
                if !path_up {
                    self.local.borrow_mut().error = true;
                    if signaled {
                        self.flush_signaled(sim, wr_id, CompletionKind::Write, nbytes);
                    }
                    return Ok(());
                }
                let deliver_at = self.fence_in_order(self.fabric.plan(
                    sim.now(),
                    self.local_node,
                    self.peer_node,
                    local.len as u64,
                ));
                let ack_at = deliver_at + self.fabric.ack_latency();
                let send_cq = self.local.borrow().send_cq.clone();
                let fabric = self.fabric.clone();
                let gen = conn_generation(&self.local, &self.peer);
                let (local_sh, peer_sh) = (Rc::clone(&self.local), Rc::clone(&self.peer));
                let (src, dst) = (self.local_node, self.peer_node);
                sim.schedule_at_labeled(deliver_at, EventLabel::channel(src.0, dst.0), move |sim| {
                    if conn_generation(&local_sh, &peer_sh) != gen {
                        return;
                    }
                    // WRITE_WITH_IMM needs a live path, a successful write,
                    // and a posted receive on the peer to notify; anything
                    // else flushes the request.
                    let wrote = fabric.path_up(src, dst)
                        && remote_mr.write(remote.offset, &payload).is_ok();
                    let recv = if wrote {
                        peer_sh.borrow_mut().posted_recvs.pop_front()
                    } else {
                        None
                    };
                    let ok = recv.is_some();
                    if !ok {
                        local_sh.borrow_mut().error = true;
                    }
                    if let Some(recv) = recv {
                        let recv_cq = peer_sh.borrow().recv_cq.clone();
                        recv_cq.push(
                            sim,
                            Completion {
                                wr_id: recv.wr_id,
                                kind: CompletionKind::RecvImm,
                                byte_len: nbytes,
                                imm: Some(imm),
                                status: CompletionStatus::Success,
                            },
                        );
                    }
                    if signaled {
                        let status = if ok {
                            CompletionStatus::Success
                        } else {
                            CompletionStatus::FlushErr
                        };
                        sim.schedule_at_labeled(ack_at, EventLabel::channel(src.0, dst.0), move |sim| {
                            send_cq.push(
                                sim,
                                Completion {
                                    wr_id,
                                    kind: CompletionKind::Write,
                                    byte_len: nbytes,
                                    imm: None,
                                    status,
                                },
                            );
                        });
                    }
                });
                Ok(())
            }
            WorkRequest::Send {
                wr_id,
                local,
                signaled,
            } => {
                local.mr.check(local.offset, local.len)?;
                let payload =
                    local.mr.with(local.offset, local.len, |s| s.to_vec())?;
                if !path_up {
                    self.local.borrow_mut().error = true;
                    if signaled {
                        self.flush_signaled(sim, wr_id, CompletionKind::Send, payload.len());
                    }
                    return Ok(());
                }
                let deliver_at = self.fence_in_order(self.fabric.plan(
                    sim.now(),
                    self.local_node,
                    self.peer_node,
                    local.len as u64,
                ));
                let ack_at = deliver_at + self.fabric.ack_latency();
                let send_cq = self.local.borrow().send_cq.clone();
                let fabric = self.fabric.clone();
                let gen = conn_generation(&self.local, &self.peer);
                let (local_sh, peer_sh) = (Rc::clone(&self.local), Rc::clone(&self.peer));
                let (src, dst) = (self.local_node, self.peer_node);
                sim.schedule_at_labeled(deliver_at, EventLabel::channel(src.0, dst.0), move |sim| {
                    if conn_generation(&local_sh, &peer_sh) != gen {
                        return;
                    }
                    if !fabric.path_up(src, dst) {
                        local_sh.borrow_mut().error = true;
                        if signaled {
                            send_cq.push(
                                sim,
                                Completion {
                                    wr_id,
                                    kind: CompletionKind::Send,
                                    byte_len: payload.len(),
                                    imm: None,
                                    status: CompletionStatus::FlushErr,
                                },
                            );
                        }
                        return;
                    }
                    deliver_send(sim, &peer_sh, payload, signaled.then_some(PendingAck {
                        cq: send_cq,
                        completion: Completion {
                            wr_id,
                            kind: CompletionKind::Send,
                            byte_len: 0, // filled below
                            imm: None,
                            status: CompletionStatus::Success,
                        },
                    }), ack_at);
                });
                Ok(())
            }
            WorkRequest::Read {
                wr_id,
                local,
                remote,
            } => {
                local.mr.check(local.offset, local.len)?;
                let remote_mr = self.fabric.resolve(remote.key)?;
                remote_mr.check(remote.offset, local.len)?;
                let len = local.len;
                if !path_up {
                    self.local.borrow_mut().error = true;
                    self.flush_signaled(sim, wr_id, CompletionKind::Read, len);
                    return Ok(());
                }
                // Phase 1: the request header travels to the responder.
                let req_at =
                    self.fabric
                        .plan(sim.now(), self.local_node, self.peer_node, 0);
                let fabric = self.fabric.clone();
                let send_cq = self.local.borrow().send_cq.clone();
                let gen = conn_generation(&self.local, &self.peer);
                let (local_sh, peer_sh) = (Rc::clone(&self.local), Rc::clone(&self.peer));
                let (src_node, dst_node) = (self.peer_node, self.local_node);
                let label = EventLabel::channel(src_node.0, dst_node.0);
                sim.schedule_at_labeled(req_at, label, move |sim| {
                    if conn_generation(&local_sh, &peer_sh) != gen {
                        return;
                    }
                    // Phase 2: the responder's NIC DMAs the data back. The
                    // data is snapshotted when the responder serves the
                    // request (RC READs see a consistent point-in-time).
                    let data = if fabric.path_up(src_node, dst_node) {
                        remote_mr.with(remote.offset, len, |s| s.to_vec()).ok()
                    } else {
                        None
                    };
                    let Some(data) = data else {
                        local_sh.borrow_mut().error = true;
                        let flush_at = sim.now() + fabric.ack_latency();
                        sim.schedule_at_labeled(flush_at, label, move |sim| {
                            send_cq.push(
                                sim,
                                Completion {
                                    wr_id,
                                    kind: CompletionKind::Read,
                                    byte_len: len,
                                    imm: None,
                                    status: CompletionStatus::FlushErr,
                                },
                            );
                        });
                        return;
                    };
                    let deliver_at = fabric.plan(sim.now(), src_node, dst_node, len as u64);
                    sim.schedule_at_labeled(deliver_at, label, move |sim| {
                        if conn_generation(&local_sh, &peer_sh) != gen {
                            return;
                        }
                        let ok = fabric.path_up(src_node, dst_node)
                            && local.mr.write(local.offset, &data).is_ok();
                        if !ok {
                            local_sh.borrow_mut().error = true;
                        }
                        send_cq.push(
                            sim,
                            Completion {
                                wr_id,
                                kind: CompletionKind::Read,
                                byte_len: len,
                                imm: None,
                                status: if ok {
                                    CompletionStatus::Success
                                } else {
                                    CompletionStatus::FlushErr
                                },
                            },
                        );
                    });
                });
                Ok(())
            }
        }
    }
}

/// Deliver an inbound SEND at the responder: match a posted receive or park
/// the payload until one is posted.
fn deliver_send(
    sim: &mut Sim,
    peer: &Rc<RefCell<QpShared>>,
    payload: Vec<u8>,
    ack: Option<PendingAck>,
    ack_at: slash_desim::SimTime,
) {
    let mut p = peer.borrow_mut();
    if let Some(recv) = p.posted_recvs.pop_front() {
        assert!(
            payload.len() <= recv.local.len,
            "SEND larger than posted receive buffer ({} > {})",
            payload.len(),
            recv.local.len
        );
        // The buffer range was validated at post_recv and the payload fits
        // it (asserted above); a failed write is unreachable but total —
        // flush the SEND into the responder's error state instead.
        if recv.local.mr.write(recv.local.offset, &payload).is_err() {
            p.error = true;
            return;
        }
        let recv_cq = p.recv_cq.clone();
        drop(p);
        recv_cq.push(
            sim,
            Completion {
                wr_id: recv.wr_id,
                kind: CompletionKind::Recv,
                byte_len: payload.len(),
                imm: None,
                status: CompletionStatus::Success,
            },
        );
        if let Some(mut ack) = ack {
            ack.completion.byte_len = payload.len();
            sim.schedule_at(ack_at.max(sim.now()), move |sim| {
                ack.cq.push(sim, ack.completion);
            });
        }
    } else {
        assert!(
            p.pending_sends.len() < MAX_PENDING_SENDS,
            "receiver not ready: {MAX_PENDING_SENDS} SENDs already buffered (RNR)"
        );
        let ack = ack.map(|mut a| {
            a.completion.byte_len = payload.len();
            a
        });
        p.pending_sends.push_back((ack, payload));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use crate::verbs::{LocalSlice, RemoteSlice};
    use slash_desim::SimTime;

    struct Pair {
        sim: Sim,
        fabric: Fabric,
        qp_a: Qp,
        qp_b: Qp,
        a_send: CqHandle,
        b_recv: CqHandle,
        a: NodeId,
        b: NodeId,
    }

    fn setup() -> Pair {
        let sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let (a_send, a_recv) = (CqHandle::new(), CqHandle::new());
        let (b_send, b_recv) = (CqHandle::new(), CqHandle::new());
        let (qp_a, qp_b) = fabric.connect(
            a,
            a_send.clone(),
            a_recv,
            b,
            b_send,
            b_recv.clone(),
        );
        Pair {
            sim,
            fabric,
            qp_a,
            qp_b,
            a_send,
            b_recv,
            a,
            b,
        }
    }

    #[test]
    fn one_sided_write_lands_and_completes() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 64);
        let dst = p.fabric.register(p.b, 64);
        src.write(0, b"hello rdma").unwrap();
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 7,
                    local: LocalSlice::range(&src, 0, 10),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 16,
                    },
                    signaled: true,
                },
            )
            .unwrap();
        // Nothing is visible before the simulation runs.
        dst.with(16, 10, |s| assert_eq!(s, [0u8; 10])).unwrap();
        p.sim.run();
        dst.with(16, 10, |s| assert_eq!(s, b"hello rdma")).unwrap();
        let c = p.a_send.poll().expect("signaled write completes");
        assert_eq!(c.wr_id, 7);
        assert_eq!(c.kind, CompletionKind::Write);
        assert_eq!(c.byte_len, 10);
    }

    #[test]
    fn unsignaled_write_generates_no_completion() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 8);
        let dst = p.fabric.register(p.b, 8);
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: false,
                },
            )
            .unwrap();
        p.sim.run();
        assert!(p.a_send.is_empty());
    }

    #[test]
    fn writes_on_one_qp_deliver_in_order() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 8);
        let dst = p.fabric.register(p.b, 8);
        // Post two writes to the same remote location; the second must win.
        src.write_u64(0, 111);
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: false,
                },
            )
            .unwrap();
        src.write_u64(0, 222);
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 2,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: false,
                },
            )
            .unwrap();
        p.sim.run();
        assert_eq!(dst.read_u64(0), 222);
    }

    #[test]
    fn send_recv_roundtrip() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 32);
        let dst = p.fabric.register(p.b, 32);
        src.write(0, b"two-sided").unwrap();
        p.qp_b
            .post_recv(
                &mut p.sim,
                RecvWr {
                    wr_id: 55,
                    local: LocalSlice::whole(&dst),
                },
            )
            .unwrap();
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Send {
                    wr_id: 9,
                    local: LocalSlice::range(&src, 0, 9),
                    signaled: true,
                },
            )
            .unwrap();
        p.sim.run();
        let c = p.b_recv.poll().expect("receive completes");
        assert_eq!(c.wr_id, 55);
        assert_eq!(c.kind, CompletionKind::Recv);
        assert_eq!(c.byte_len, 9);
        dst.with(0, 9, |s| assert_eq!(s, b"two-sided")).unwrap();
        assert_eq!(p.a_send.poll().unwrap().kind, CompletionKind::Send);
    }

    #[test]
    fn send_before_recv_is_buffered() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 8);
        let dst = p.fabric.register(p.b, 8);
        src.write_u64(0, 0xABCD);
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Send {
                    wr_id: 1,
                    local: LocalSlice::whole(&src),
                    signaled: false,
                },
            )
            .unwrap();
        p.sim.run();
        assert!(p.b_recv.is_empty(), "no recv posted yet");
        p.qp_b
            .post_recv(
                &mut p.sim,
                RecvWr {
                    wr_id: 2,
                    local: LocalSlice::whole(&dst),
                },
            )
            .unwrap();
        p.sim.run();
        assert_eq!(p.b_recv.poll().unwrap().wr_id, 2);
        assert_eq!(dst.read_u64(0), 0xABCD);
    }

    #[test]
    fn write_imm_notifies_via_posted_recv() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 16);
        let dst = p.fabric.register(p.b, 16);
        let note = p.fabric.register(p.b, 0);
        p.qp_b
            .post_recv(
                &mut p.sim,
                RecvWr {
                    wr_id: 3,
                    local: LocalSlice::whole(&note),
                },
            )
            .unwrap();
        src.write_u64(0, 42);
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::WriteImm {
                    wr_id: 4,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    imm: 0xFEED,
                    signaled: false,
                },
            )
            .unwrap();
        p.sim.run();
        let c = p.b_recv.poll().unwrap();
        assert_eq!(c.kind, CompletionKind::RecvImm);
        assert_eq!(c.imm, Some(0xFEED));
        assert_eq!(dst.read_u64(0), 42);
    }

    #[test]
    fn read_pulls_remote_data() {
        let mut p = setup();
        let local = p.fabric.register(p.a, 16);
        let remote = p.fabric.register(p.b, 16);
        remote.write_u64(8, 777);
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Read {
                    wr_id: 11,
                    local: LocalSlice::range(&local, 0, 8),
                    remote: RemoteSlice {
                        key: remote.remote_key(),
                        offset: 8,
                    },
                },
            )
            .unwrap();
        p.sim.run();
        assert_eq!(local.read_u64(0), 777);
        let c = p.a_send.poll().unwrap();
        assert_eq!(c.kind, CompletionKind::Read);
        assert_eq!(c.wr_id, 11);
    }

    #[test]
    fn read_has_higher_latency_than_write() {
        // The paper's rationale for choosing WRITEs (§6.3): a READ is a full
        // round trip.
        let mut p = setup();
        let src = p.fabric.register(p.a, 1024);
        let dst = p.fabric.register(p.b, 1024);

        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: true,
                },
            )
            .unwrap();
        let write_done = {
            let mut t = SimTime::ZERO;
            while p.a_send.is_empty() {
                if p.sim.pending_events() == 0 {
                    break;
                }
                t = p.sim.run_until(p.sim.now() + SimTime::from_nanos(50));
            }
            p.a_send.poll().unwrap();
            t
        };

        // Fresh pair for the READ so link state is comparable.
        let mut p2 = setup();
        let local = p2.fabric.register(p2.a, 1024);
        let remote = p2.fabric.register(p2.b, 1024);
        p2.qp_a
            .post_send(
                &mut p2.sim,
                WorkRequest::Read {
                    wr_id: 2,
                    local: LocalSlice::whole(&local),
                    remote: RemoteSlice {
                        key: remote.remote_key(),
                        offset: 0,
                    },
                },
            )
            .unwrap();
        let read_done = p2.sim.run();
        assert!(
            read_done > write_done,
            "READ ({read_done}) must be slower than WRITE ({write_done})"
        );
    }

    #[test]
    fn write_to_dead_peer_flushes_and_errors_the_qp() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 64);
        let dst = p.fabric.register(p.b, 64);
        p.fabric.fail_node(p.b);
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 42,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: true,
                },
            )
            .unwrap();
        p.sim.run();
        let c = p.a_send.poll().expect("flushed completion must surface");
        assert_eq!(c.wr_id, 42);
        assert!(!c.is_ok(), "completion must carry FlushErr");
        assert!(p.qp_a.is_error(), "QP must be in the error state");
        assert!(matches!(
            p.qp_a.post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 43,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice { key: dst.remote_key(), offset: 0 },
                    signaled: false,
                },
            ),
            Err(RdmaError::QpError)
        ));
    }

    #[test]
    fn link_down_mid_flight_flushes_at_delivery() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 64);
        let dst = p.fabric.register(p.b, 64);
        src.write(0, b"payload!").unwrap();
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::range(&src, 0, 8),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: true,
                },
            )
            .unwrap();
        // The fault lands while the WRITE is on the wire.
        p.fabric.set_link_down(p.b, true);
        p.sim.run();
        let c = p.a_send.poll().unwrap();
        assert!(!c.is_ok());
        dst.with(0, 8, |s| assert_eq!(s, [0u8; 8], "no bytes must land"))
            .unwrap();
    }

    #[test]
    fn reset_clears_error_and_fences_stale_deliveries() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 64);
        let dst = p.fabric.register(p.b, 64);
        src.write(0, b"stale!!!").unwrap();
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::range(&src, 0, 8),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: false,
                },
            )
            .unwrap();
        // Reset both endpoints before the delivery fires: the in-flight
        // WRITE belongs to the old incarnation and must be dropped.
        p.qp_a.reset();
        p.qp_b.reset();
        p.sim.run();
        dst.with(0, 8, |s| assert_eq!(s, [0u8; 8], "stale delivery fenced"))
            .unwrap();
        assert!(!p.qp_a.is_error());

        // The re-established connection carries traffic again.
        src.write(0, b"fresh!!!").unwrap();
        p.qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 2,
                    local: LocalSlice::range(&src, 0, 8),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: false,
                },
            )
            .unwrap();
        p.sim.run();
        dst.with(0, 8, |s| assert_eq!(s, b"fresh!!!")).unwrap();
    }

    #[test]
    fn extra_delay_slows_delivery_without_loss() {
        let mut healthy = setup();
        let src = healthy.fabric.register(healthy.a, 64);
        let dst = healthy.fabric.register(healthy.b, 64);
        healthy
            .qp_a
            .post_send(
                &mut healthy.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice { key: dst.remote_key(), offset: 0 },
                    signaled: true,
                },
            )
            .unwrap();
        let t_healthy = healthy.sim.run();

        let mut slow = setup();
        let src2 = slow.fabric.register(slow.a, 64);
        let dst2 = slow.fabric.register(slow.b, 64);
        slow.fabric.set_extra_delay(slow.b, SimTime::from_micros(5));
        slow.qp_a
            .post_send(
                &mut slow.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::whole(&src2),
                    remote: RemoteSlice { key: dst2.remote_key(), offset: 0 },
                    signaled: true,
                },
            )
            .unwrap();
        let t_slow = slow.sim.run();
        assert!(t_slow > t_healthy, "degraded path must be slower");
        let c = slow.a_send.poll().unwrap();
        assert!(c.is_ok(), "delayed completions still succeed");
        dst2.with(0, 8, |_| ()).unwrap();
    }

    #[test]
    fn invalid_remote_access_fails_at_post_time() {
        let mut p = setup();
        let src = p.fabric.register(p.a, 64);
        let dst = p.fabric.register(p.b, 16);
        let err = p
            .qp_a
            .post_send(
                &mut p.sim,
                WorkRequest::Write {
                    wr_id: 1,
                    local: LocalSlice::whole(&src),
                    remote: RemoteSlice {
                        key: dst.remote_key(),
                        offset: 0,
                    },
                    signaled: false,
                },
            )
            .unwrap_err();
        assert!(matches!(err, RdmaError::OutOfBounds { .. }));
    }
}
