//! Figure 6: end-to-end throughput of Flink, RDMA UpPar, and Slash on
//! YSB (a), CM (b), NB7 (c), NB8 (d), NB11 (e), weak-scaled over
//! 2, 4, 8, and 16 nodes.

use slash_perfmodel::Table;
use slash_workloads::{cm, nb11, nb7, nb8, ysb};

use crate::scale::Scale;
use crate::suts::{self, WorkloadGen};

/// The node counts of the paper's weak-scaling sweep.
pub const NODE_COUNTS: [usize; 4] = [2, 4, 8, 16];

/// Throughput of the three SUTs at one node count.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Point {
    /// Cluster size.
    pub nodes: usize,
    /// Flink-sim records/s.
    pub flink: f64,
    /// RDMA UpPar records/s.
    pub uppar: f64,
    /// Slash records/s.
    pub slash: f64,
}

/// The generator for one of the five sub-figures.
pub fn query_gen(query: &str) -> WorkloadGen {
    match query {
        "ysb" => ysb,
        "cm" => cm,
        "nb7" => nb7,
        "nb8" => nb8,
        "nb11" => nb11,
        other => panic!("unknown fig6 query {other:?} (ysb|cm|nb7|nb8|nb11)"),
    }
}

/// Run one sub-figure across the node sweep.
pub fn run(query: &str, scale: Scale, node_counts: &[usize]) -> Vec<Fig6Point> {
    let gen = query_gen(query);
    node_counts
        .iter()
        .map(|&nodes| Fig6Point {
            nodes,
            flink: suts::flink(gen, nodes, scale).throughput(),
            uppar: suts::uppar(gen, nodes, scale).throughput(),
            slash: suts::slash(gen, nodes, scale).throughput(),
        })
        .collect()
}

/// Render one sub-figure as a table.
pub fn table(query: &str, points: &[Fig6Point]) -> Table {
    let mut t = Table::new(
        format!("Fig. 6 ({query}): throughput in records/s"),
        &["nodes", "flink", "uppar", "slash", "slash/uppar", "slash/flink"],
    );
    for p in points {
        t.row(vec![
            p.nodes.to_string(),
            format!("{:.3e}", p.flink),
            format!("{:.3e}", p.uppar),
            format!("{:.3e}", p.slash),
            format!("{:.1}x", p.slash / p.uppar),
            format!("{:.1}x", p.slash / p.flink),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ysb_shape_holds_at_small_scale() {
        let points = run("ysb", Scale::tiny(), &[2, 4]);
        for p in &points {
            assert!(p.slash > p.uppar, "{p:?}");
            assert!(p.uppar > p.flink, "{p:?}");
        }
        // Weak scaling: Slash throughput grows with nodes.
        assert!(points[1].slash > 1.5 * points[0].slash);
    }

    #[test]
    #[should_panic(expected = "unknown fig6 query")]
    fn unknown_query_rejected() {
        query_gen("nope");
    }
}
