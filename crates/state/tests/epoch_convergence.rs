//! Property test of the epoch-based coherence protocol (§7.2.2):
//! distributed instances of the SSB that follow the protocol converge, at
//! the end of each epoch, to the state a sequential execution would have
//! produced — for arbitrary schedules of updates, epoch tokens, and
//! simulation progress.

use std::collections::HashMap;

use proptest::prelude::*;
use slash_desim::Sim;
use slash_net::ChannelConfig;
use slash_rdma::{Fabric, FabricConfig};
use slash_state::backend::{build_cluster, SsbConfig, SsbNode};
use slash_state::hash::{pack_key, partition_of};
use slash_state::CounterCrdt;

#[derive(Debug, Clone)]
enum Op {
    /// Node `who` adds `amount` to key `g`.
    Update { who: usize, g: u64, amount: u64 },
    /// Node `who` closes its epoch.
    Epoch { who: usize },
    /// Pump all nodes and run the simulation to quiescence.
    Settle,
}

fn op_strategy(n: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..n, 0u64..16, 1u64..100)
            .prop_map(|(who, g, amount)| Op::Update { who, g, amount }),
        2 => (0..n).prop_map(|who| Op::Epoch { who }),
        1 => Just(Op::Settle),
    ]
}

fn settle(sim: &mut Sim, ssb: &mut [SsbNode]) {
    for _ in 0..10_000 {
        let mut progress = 0;
        for node in ssb.iter_mut() {
            let (s, m) = node.pump(sim).unwrap();
            progress += s + m;
        }
        let in_flight = sim.pending_events() > 0;
        sim.run();
        if progress == 0 && !in_flight && ssb.iter().all(|x| x.flushed()) {
            return;
        }
    }
    panic!("did not settle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distributed_equals_sequential(
        n in 2usize..5,
        ops in proptest::collection::vec(op_strategy(4), 1..150),
    ) {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(n);
        let cfg = SsbConfig {
            nodes: n,
            epoch_bytes: u64::MAX,
            channel: ChannelConfig { credits: 4, buffer_size: 512, credit_batch: 1 },
        };
        let mut ssb = build_cluster(&fabric, &nodes, CounterCrdt::descriptor(), cfg);
        let mut expected: HashMap<u64, u64> = HashMap::new();

        for op in &ops {
            match op {
                Op::Update { who, g, amount } => {
                    let who = who % n;
                    ssb[who].rmw(pack_key(1, *g), |v| CounterCrdt::add(v, *amount));
                    *expected.entry(*g).or_default() += amount;
                }
                Op::Epoch { who } => {
                    let who = who % n;
                    ssb[who].close_epoch(&mut sim).unwrap();
                }
                Op::Settle => settle(&mut sim, &mut ssb),
            }
        }
        // Final epoch on every node, then settle: all partials reach their
        // leaders.
        for node in ssb.iter_mut() {
            node.close_epoch(&mut sim).unwrap();
        }
        settle(&mut sim, &mut ssb);

        for (g, want) in &expected {
            let key = pack_key(1, *g);
            let leader = partition_of(key, n);
            let got = ssb[leader].local_get(key).map(CounterCrdt::get);
            prop_assert_eq!(got, Some(*want), "key {} on leader {}", g, leader);
        }
    }
}
