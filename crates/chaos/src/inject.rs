//! Arming a fault plan on a simulator + fabric, with trace events.

use slash_desim::{Sim, SimTime};
use slash_obs::{Cat, Obs};
use slash_rdma::{Fabric, NodeId};

use crate::plan::{FaultKind, FaultPlan};

/// Trace `tid` used for fault-injection events (one lane per node `pid`).
const FAULT_TID: u32 = 900;

/// Schedules the fabric-level side of a [`FaultPlan`] on a simulator.
///
/// Every event becomes one or two `Sim::schedule_at` closures driving the
/// `slash-rdma` fault hooks, plus `Cat::Fault` trace events marking the
/// outage window. The injector deliberately knows nothing about processes
/// or recovery: the engine embedding it (see `SlashCluster::run_chaos`)
/// reacts to the faults through the same observable surface real protocol
/// code has — flushed completions, error-state QPs, stalled epoch tokens.
pub struct Injector;

impl Injector {
    /// Arm every event of `plan` on `sim` against `fabric`.
    ///
    /// Node indices in the plan index into `nodes` (the fabric nodes of
    /// the run, in cluster order); plan events naming out-of-range nodes
    /// are ignored, so one plan can be reused across cluster sizes.
    ///
    /// Events sharing a timestamp (e.g. [`FaultPlan::concurrent`]) are
    /// scheduled in plan order and fire deterministically within the
    /// same virtual instant — no protocol code can observe an
    /// intermediate state where only one of two simultaneous crashes has
    /// landed, because the fabric hooks run before any event scheduled
    /// after them at the same timestamp sees the fabric.
    pub fn arm(sim: &mut Sim, fabric: &Fabric, nodes: &[NodeId], obs: &Obs, plan: &FaultPlan) {
        for ev in plan.events() {
            let Some(&node) = nodes.get(ev.kind.node()) else {
                continue;
            };
            let fabric = fabric.clone();
            let pid = node.0;
            match ev.kind {
                FaultKind::NodeCrash { .. } => {
                    obs.instant(Cat::Fault, "fault:node-crash", pid, FAULT_TID, ev.at, &[(
                        "node",
                        node.0 as u64,
                    )]);
                    sim.schedule_at(ev.at, move |_sim| fabric.fail_node(node));
                }
                FaultKind::LinkFlap { down_for, .. } => {
                    obs.span(
                        Cat::Fault,
                        "fault:link-flap",
                        pid,
                        FAULT_TID,
                        ev.at,
                        ev.at + down_for,
                        &[("node", node.0 as u64), ("down_ns", down_for.as_nanos())],
                    );
                    let up = fabric.clone();
                    sim.schedule_at(ev.at, move |_sim| fabric.set_link_down(node, true));
                    sim.schedule_at(ev.at + down_for, move |_sim| {
                        up.set_link_down(node, false)
                    });
                }
                FaultKind::LinkDegrade {
                    extra, duration, ..
                }
                | FaultKind::DelayedCompletions {
                    extra, duration, ..
                } => {
                    let name = match ev.kind {
                        FaultKind::LinkDegrade { .. } => "fault:link-degrade",
                        _ => "fault:delayed-completions",
                    };
                    obs.span(
                        Cat::Fault,
                        name,
                        pid,
                        FAULT_TID,
                        ev.at,
                        ev.at + duration,
                        &[("node", node.0 as u64), ("extra_ns", extra.as_nanos())],
                    );
                    let clear = fabric.clone();
                    sim.schedule_at(ev.at, move |_sim| fabric.set_extra_delay(node, extra));
                    sim.schedule_at(ev.at + duration, move |_sim| {
                        clear.set_extra_delay(node, SimTime::ZERO)
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_rdma::FabricConfig;

    #[test]
    fn armed_plan_drives_fabric_state() {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(3);
        let obs = Obs::enabled(1024);
        let plan = FaultPlan::new()
            .crash(SimTime::from_millis(2), 0)
            .link_flap(SimTime::from_millis(1), 1, SimTime::from_millis(1))
            .delay_completions(
                SimTime::from_millis(1),
                2,
                SimTime::from_micros(5),
                SimTime::from_millis(2),
            );
        Injector::arm(&mut sim, &fabric, &nodes, &obs, &plan);

        sim.run_until(SimTime::from_millis(1));
        assert!(fabric.node_alive(nodes[0]));
        assert!(!fabric.link_up(nodes[1]), "flap window open");
        assert!(!fabric.path_up(nodes[0], nodes[1]));

        sim.run_until(SimTime::from_millis(2));
        assert!(!fabric.node_alive(nodes[0]), "crash landed");
        assert!(fabric.link_up(nodes[1]), "flap window closed");

        sim.run_until(SimTime::from_millis(4));
        assert!(!fabric.node_alive(nodes[0]), "crashes are permanent");
        // Fault trace events were emitted.
        assert!(obs.event_count() >= 3);
    }

    #[test]
    fn concurrent_crashes_land_in_the_same_instant() {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(4);
        let obs = Obs::disabled();
        let at = SimTime::from_millis(1);
        let plan = FaultPlan::new().concurrent(at, &[1, 2]);
        Injector::arm(&mut sim, &fabric, &nodes, &obs, &plan);

        sim.run_until(at - SimTime::from_nanos(1));
        assert!(fabric.node_alive(nodes[1]) && fabric.node_alive(nodes[2]));

        sim.run_until(at);
        assert!(!fabric.node_alive(nodes[1]), "first victim dead");
        assert!(!fabric.node_alive(nodes[2]), "second victim dead");
        assert!(fabric.node_alive(nodes[0]) && fabric.node_alive(nodes[3]));
    }

    #[test]
    fn out_of_range_nodes_are_ignored() {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(2);
        let obs = Obs::disabled();
        let plan = FaultPlan::new().crash(SimTime::from_millis(1), 7);
        Injector::arm(&mut sim, &fabric, &nodes, &obs, &plan);
        sim.run();
        assert!(fabric.node_alive(nodes[0]) && fabric.node_alive(nodes[1]));
    }
}
