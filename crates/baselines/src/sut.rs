//! Common report type for all systems under test.

use slash_core::{EngineMetrics, SinkResult};
use slash_desim::SimTime;

/// What every SUT run reports; the harness compares these across systems.
#[derive(Debug, Default)]
pub struct CommonReport {
    /// Source records processed.
    pub records: u64,
    /// Virtual time when ingestion/processing of source data finished.
    pub processing_time: SimTime,
    /// Virtual time when all output was emitted.
    pub completion_time: SimTime,
    /// Window results emitted.
    pub emitted: u64,
    /// Join pairs across all results.
    pub total_pairs: u64,
    /// Collected results (when requested).
    pub results: Vec<SinkResult>,
    /// Counters of the partitioning/sender role (empty for systems
    /// without one).
    pub sender_metrics: EngineMetrics,
    /// Counters of the processing/receiver role.
    pub receiver_metrics: EngineMetrics,
    /// Bytes moved across the fabric.
    pub net_tx_bytes: u64,
}

impl CommonReport {
    /// Sustained throughput in records per second of virtual time.
    pub fn throughput(&self) -> f64 {
        if self.processing_time == SimTime::ZERO {
            return 0.0;
        }
        self.records as f64 / self.processing_time.as_secs_f64()
    }

    /// Combined counters of both roles.
    pub fn total_metrics(&self) -> EngineMetrics {
        let mut m = self.sender_metrics.clone();
        m.absorb(&self.receiver_metrics);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let r = CommonReport {
            records: 1_000_000,
            processing_time: SimTime::from_millis(500),
            ..Default::default()
        };
        assert!((r.throughput() - 2e6).abs() < 1.0);
        assert_eq!(CommonReport::default().throughput(), 0.0);
    }
}
