//! Flink-sim — the plug-and-play integration (paper §3.1, §8.1.1).
//!
//! Models Apache Flink 1.9 deployed on IPoIB: the same re-partitioning
//! topology as UpPar, but with socket-style channels (kernel copies,
//! syscalls, degraded goodput) and a managed-runtime multiplier on every
//! CPU cost. Per the paper's configuration, half of each node's cores do
//! network I/O + partitioning and half process.

use std::rc::Rc;

use slash_core::QueryPlan;

use crate::partitioned::{run_partitioned, PartitionedConfig, Transport};
use crate::sut::CommonReport;

/// Flink-sim's configuration: socket transport + managed-runtime factor.
pub fn flink_config(nodes: usize, workers_per_node: usize) -> PartitionedConfig {
    let mut cfg = PartitionedConfig::new(nodes, workers_per_node, Transport::Socket);
    cfg.runtime_factor = cfg.cost.managed_runtime_factor;
    cfg
}

/// Run a query on Flink-sim.
pub fn run_flink(
    plan: QueryPlan,
    partitions: Vec<Rc<Vec<u8>>>,
    cfg: PartitionedConfig,
) -> CommonReport {
    assert_eq!(cfg.transport, Transport::Socket, "Flink-sim uses IPoIB sockets");
    assert!(
        cfg.runtime_factor > 1.0,
        "Flink-sim models a managed runtime"
    );
    run_partitioned(plan, partitions, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_core::{AggSpec, RecordSchema, StreamDef, WindowAssigner};

    #[test]
    fn flink_runs_and_reports() {
        let gen = |n: u64| -> Rc<Vec<u8>> {
            let mut buf = Vec::new();
            for i in 0..n {
                buf.extend_from_slice(&(1 + i).to_le_bytes());
                buf.extend_from_slice(&(i % 16).to_le_bytes());
            }
            Rc::new(buf)
        };
        let plan = QueryPlan::Aggregate {
            input: StreamDef::new(RecordSchema::plain(16)),
            window: WindowAssigner::Tumbling { size: 500 },
            agg: AggSpec::Count,
        };
        let report = run_flink(plan, vec![gen(1000), gen(1000)], flink_config(2, 2));
        assert_eq!(report.records, 2000);
        assert!(report.throughput() > 0.0);
    }
}
