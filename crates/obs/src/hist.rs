//! HDR-style log-bucketed histogram.
//!
//! Values are bucketed with a fixed relative error of at most `1/128`
//! (7 sub-bucket bits per octave), using only integer arithmetic so that
//! recording, merging, and quantile queries are bit-for-bit deterministic
//! across platforms. This replaces the lossy `latency_sum / latency_samples`
//! averages that previously lived in `ChannelStats`: a mean hides exactly
//! the tail behaviour (p99, p99.9, p99.99) that matters for a streaming
//! engine — at p99.99 a 1/32 bucket would smear the estimate by >3%, so the
//! SLO gate's budgets demand the finer 1/128 (<1%) resolution.
//!
//! Layout: values `< 128` map to unit-width buckets `0..128`; a value with
//! most-significant bit `m >= 7` lands in octave group `m - 6`, sub-bucket
//! `(v >> (m - 7)) - 128`. With 64-bit values this is at most
//! `58 * 128 = 7424` buckets; storage grows lazily so an idle histogram is
//! a few machine words.

/// Sub-bucket resolution bits: 128 sub-buckets per octave, relative error <= 1/128.
const SUB_BITS: u32 = 7;
/// Number of sub-buckets per octave (`1 << SUB_BITS`).
const SUB: u64 = 1 << SUB_BITS;
/// Denominator of the relative-error bound: bucket width <= lower/RESOLUTION + 1.
pub const RESOLUTION: u64 = SUB;

/// A log-bucketed histogram over `u64` values (typically nanoseconds).
///
/// All operations are O(1) or O(buckets); none allocate after the bucket
/// vector has grown to cover the largest recorded value. Merging is
/// associative and commutative (element-wise bucket addition), which the
/// property tests in this module verify against exact sorted samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a value. Total over all of `u64`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let group = (msb - SUB_BITS + 1) as usize;
        let sub = ((v >> (msb - SUB_BITS)) - SUB) as usize;
        group * SUB as usize + sub
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lower(idx: usize) -> u64 {
    let sub_n = SUB as usize;
    if idx < sub_n {
        idx as u64
    } else {
        let group = idx / sub_n;
        let sub = (idx % sub_n) as u64;
        (SUB + sub) << (group - 1)
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_upper(idx: usize) -> u64 {
    let sub_n = SUB as usize;
    if idx < sub_n {
        idx as u64
    } else {
        // `lower - 1 + width` instead of `lower + width - 1`: the topmost
        // bucket's upper bound is exactly `u64::MAX`, which the latter
        // form would overflow computing.
        let group = idx / sub_n;
        bucket_lower(idx) - 1 + (1u64 << (group - 1))
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] = self.counts[idx].saturating_add(1);
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of recorded values, if any.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Value at quantile `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket holding the `ceil(q * count)`-th
    /// smallest sample (clamped to the observed maximum), so the estimate `e`
    /// for an exact quantile `x` satisfies `x <= e <= x + x/128 + 1`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // `q * count` computed in floating point can land one ulp above an
        // exact integer (e.g. `0.999 * 1000 == 999.0000000000001`), and a
        // naive `ceil` then selects the rank *after* the intended one — an
        // off-by-one that surfaces exactly at bucket-edge sample sets. Nudge
        // the target down by a relative epsilon before taking the ceiling so
        // "within rounding noise of integer k" resolves to rank k.
        let target = q * self.count as f64;
        let rank = ((target - target * 1e-12 - 1e-9).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_upper(idx).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one (element-wise bucket addition).
    ///
    /// Bucket counts and the total count saturate at `u64::MAX` instead of
    /// wrapping: a registry that aggregates merged histograms across many
    /// runs must degrade to a pinned tail, never to a tiny wrapped count
    /// that would report a falsely rosy quantile.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst = dst.saturating_add(src);
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if self.count != other.count || self.sum != other.sum {
            return false;
        }
        if self.count > 0 && (self.min != other.min || self.max != other.max) {
            return false;
        }
        let longest = self.counts.len().max(other.counts.len());
        (0..longest).all(|i| {
            self.counts.get(i).copied().unwrap_or(0) == other.counts.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for Histogram {}

#[cfg(test)]
mod tests {
    use super::*;
    use slash_desim::DetRng;

    #[test]
    fn bucket_bounds_cover_values() {
        let mut rng = DetRng::new(0x0B5);
        for _ in 0..10_000 {
            let shift = rng.next_below(64) as u32;
            let v = rng.next_u64() >> shift;
            let idx = bucket_index(v);
            assert!(bucket_lower(idx) <= v, "lower bound for {v}");
            assert!(v <= bucket_upper(idx), "upper bound for {v}");
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut rng = DetRng::new(0x0B6);
        for _ in 0..10_000 {
            let shift = rng.next_below(64) as u32;
            let v = rng.next_u64() >> shift;
            let idx = bucket_index(v);
            let width = bucket_upper(idx) - bucket_lower(idx);
            assert!(
                width <= bucket_lower(idx) / RESOLUTION + 1,
                "width {width} too wide for value {v}"
            );
        }
    }

    /// Check every quantile of `hist` against the exact sorted samples,
    /// with the intended rank computed in integer arithmetic (no fp ceil).
    fn assert_quantiles_match(hist: &Histogram, exact: &mut [u64], tag: &str) {
        exact.sort_unstable();
        let n = exact.len();
        assert_eq!(hist.count(), n as u64, "{tag}: count");
        assert_eq!(hist.max(), exact.last().copied(), "{tag}: max");
        assert_eq!(hist.min(), exact.first().copied(), "{tag}: min");
        for &(q, num, den) in &[
            (0.0, 0u64, 1u64),
            (0.5, 1, 2),
            (0.9, 9, 10),
            (0.99, 99, 100),
            (0.999, 999, 1_000),
            (0.9999, 9_999, 10_000),
            (1.0, 1, 1),
        ] {
            // Exact rank `ceil(num/den * n)` without floating point, so the
            // oracle itself has no fp-boundary off-by-one.
            let rank = ((num as u128 * n as u128).div_ceil(den as u128) as usize).clamp(1, n);
            let x = exact[rank - 1];
            let e = hist.quantile(q).unwrap();
            assert!(x <= e, "{tag} q {q}: exact {x} > est {e}");
            assert!(
                e - x <= x / RESOLUTION + 1,
                "{tag} q {q}: est {e} beyond bound of exact {x}"
            );
        }
    }

    /// Quantile estimates vs. an exact sort across three distributions
    /// (uniform, heavy-tailed, bucket-edge values), including p99.99
    /// (satellite: property tests).
    #[test]
    fn quantiles_bounded_vs_exact_sort() {
        for seed in 0..8u64 {
            let mut rng = DetRng::new(0x9A11 + seed);
            let n = 1 + rng.next_below(10_000) as usize;
            for dist in 0..3u32 {
                let mut hist = Histogram::new();
                let mut exact: Vec<u64> = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = match dist {
                        // Uniform over a micro-to-millisecond latency range.
                        0 => rng.next_below(1_000_000),
                        // Heavy-tailed: uniform mantissa, geometric scale.
                        1 => rng.next_u64() >> rng.next_below(48),
                        // Exact bucket-edge values (powers of two and their
                        // sub-bucket lower bounds) — the off-by-one trap.
                        _ => {
                            let group = rng.next_below(30) as usize + 1;
                            let sub = rng.next_below(SUB);
                            (SUB + sub) << (group - 1)
                        }
                    };
                    hist.record(v);
                    exact.push(v);
                }
                assert_quantiles_match(&hist, &mut exact, &format!("seed {seed} dist {dist}"));
            }
        }
    }

    /// A fp `ceil(q * count)` overshoots at `0.999 * 1000`; the corrected
    /// rank must select the 999th sample, not the 1000th (satellite:
    /// boundary off-by-one fix).
    #[test]
    fn quantile_rank_is_exact_at_fp_boundaries() {
        let mut hist = Histogram::new();
        for _ in 0..999 {
            hist.record(10);
        }
        hist.record(100);
        // Rank 999 of 1000 is the value 10 (a unit bucket, so exact).
        assert_eq!(hist.quantile(0.999), Some(10));
        assert_eq!(hist.quantile(1.0), Some(100));
        assert_eq!(hist.quantile(0.0), Some(10));
    }

    #[test]
    fn single_sample_histogram_is_exact_everywhere() {
        let mut hist = Histogram::new();
        hist.record(123_456);
        for &q in &[0.0, 0.5, 0.9999, 1.0] {
            // One sample: every quantile clamps to the observed max.
            assert_eq!(hist.quantile(q), Some(123_456));
        }
        assert_eq!(hist.mean(), Some(123_456));
        assert_eq!(hist.min(), Some(123_456));
        assert_eq!(hist.max(), Some(123_456));
    }

    /// Repeated self-merge doubles every bucket until the counts pin at
    /// `u64::MAX` instead of wrapping (satellite: merge saturation).
    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut hist = Histogram::new();
        hist.record(7);
        hist.record(1_000_000);
        let mut prev = hist.count();
        for _ in 0..70 {
            let snapshot = hist.clone();
            hist.merge(&snapshot);
            assert!(hist.count() >= prev, "count must be monotone under merge");
            prev = hist.count();
        }
        assert_eq!(hist.count(), u64::MAX);
        // Quantiles stay well-formed (no panic, within observed range) even
        // though per-bucket counts have pinned and rank attribution is
        // degenerate by design.
        assert_eq!(hist.quantile(0.0), Some(7));
        let top = hist.quantile(1.0).unwrap();
        assert!(top >= 7 && top <= hist.max().unwrap());
    }

    /// Merging is associative and equals recording the concatenation
    /// (satellite: property tests).
    #[test]
    fn merge_is_associative_and_matches_concat() {
        for seed in 0..8u64 {
            let mut rng = DetRng::new(0x3E6 + seed);
            let mut parts: Vec<Histogram> = Vec::new();
            let mut all = Histogram::new();
            for _ in 0..3 {
                let mut h = Histogram::new();
                for _ in 0..rng.next_below(2_000) {
                    let v = rng.next_u64() >> rng.next_below(40);
                    h.record(v);
                    all.record(v);
                }
                parts.push(h);
            }
            // (a + b) + c
            let mut left = parts[0].clone();
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            // a + (b + c)
            let mut bc = parts[1].clone();
            bc.merge(&parts[2]);
            let mut right = parts[0].clone();
            right.merge(&bc);
            assert_eq!(left, right, "seed {seed}: merge not associative");
            assert_eq!(left, all, "seed {seed}: merge differs from concat");
        }
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}
