//! Aggregation specifications: how a windowed aggregation folds records
//! into CRDT state and renders triggered values.

use slash_state::{CounterCrdt, HllCrdt, MaxCrdt, MeanCrdt, MinCrdt, StateDescriptor};

use crate::record::RecordSchema;

/// A windowed aggregation function over one record field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggSpec {
    /// Count records per key (YSB, RO).
    Count,
    /// Sum of a u64 field.
    SumU64 {
        /// Field byte offset.
        off: usize,
    },
    /// Maximum of a u64 field (NB7: highest bid price).
    MaxU64 {
        /// Field byte offset.
        off: usize,
    },
    /// Minimum of a u64 field.
    MinU64 {
        /// Field byte offset.
        off: usize,
    },
    /// Mean of an f64 field (CM: mean CPU share per job).
    MeanF64 {
        /// Field byte offset.
        off: usize,
    },
    /// Approximate distinct count of a u64 field via a HyperLogLog CRDT
    /// (an extension beyond the paper's operators; ±6.5 % standard error).
    ApproxDistinct {
        /// Field byte offset.
        off: usize,
    },
}

impl AggSpec {
    /// The SSB descriptor for this aggregation's state.
    pub fn descriptor(&self) -> StateDescriptor {
        match self {
            AggSpec::Count => CounterCrdt::descriptor(),
            AggSpec::SumU64 { .. } => CounterCrdt::descriptor(),
            AggSpec::MaxU64 { .. } => MaxCrdt::descriptor(),
            AggSpec::MinU64 { .. } => MinCrdt::descriptor(),
            AggSpec::MeanF64 { .. } => MeanCrdt::descriptor(),
            AggSpec::ApproxDistinct { .. } => HllCrdt::descriptor(),
        }
    }

    /// Fold one record into the CRDT value (the per-record RMW body).
    #[inline]
    pub fn update(&self, schema: &RecordSchema, rec: &[u8], value: &mut [u8]) {
        match *self {
            AggSpec::Count => CounterCrdt::add(value, 1),
            AggSpec::SumU64 { off } => CounterCrdt::add(value, schema.field_u64(rec, off)),
            AggSpec::MaxU64 { off } => MaxCrdt::update(value, schema.field_u64(rec, off)),
            AggSpec::MinU64 { off } => MinCrdt::update(value, schema.field_u64(rec, off)),
            AggSpec::MeanF64 { off } => MeanCrdt::observe(value, schema.field_f64(rec, off)),
            AggSpec::ApproxDistinct { off } => HllCrdt::observe(value, schema.field_u64(rec, off)),
        }
    }

    /// Render a triggered CRDT value as the query's numeric output.
    pub fn render(&self, value: &[u8]) -> f64 {
        match self {
            AggSpec::Count | AggSpec::SumU64 { .. } => CounterCrdt::get(value) as f64,
            AggSpec::MaxU64 { .. } => MaxCrdt::get(value) as f64,
            AggSpec::MinU64 { .. } => MinCrdt::get(value) as f64,
            AggSpec::MeanF64 { .. } => MeanCrdt::mean(value).unwrap_or(f64::NAN),
            AggSpec::ApproxDistinct { .. } => HllCrdt::estimate(value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts: u64, key: u64, field: u64) -> Vec<u8> {
        let mut r = Vec::new();
        r.extend_from_slice(&ts.to_le_bytes());
        r.extend_from_slice(&key.to_le_bytes());
        r.extend_from_slice(&field.to_le_bytes());
        r
    }

    #[test]
    fn count_and_sum() {
        let schema = RecordSchema::plain(24);
        let d = AggSpec::Count.descriptor();
        let mut v = vec![0u8; d.fixed_size()];
        (d.init)(&mut v);
        AggSpec::Count.update(&schema, &rec(1, 2, 3), &mut v);
        AggSpec::Count.update(&schema, &rec(1, 2, 3), &mut v);
        assert_eq!(AggSpec::Count.render(&v), 2.0);

        let sum = AggSpec::SumU64 { off: 16 };
        let mut v2 = vec![0u8; 8];
        (sum.descriptor().init)(&mut v2);
        sum.update(&schema, &rec(1, 2, 10), &mut v2);
        sum.update(&schema, &rec(1, 2, 32), &mut v2);
        assert_eq!(sum.render(&v2), 42.0);
    }

    #[test]
    fn max_min() {
        let schema = RecordSchema::plain(24);
        let max = AggSpec::MaxU64 { off: 16 };
        let mut v = vec![0u8; 8];
        (max.descriptor().init)(&mut v);
        for x in [5, 99, 12] {
            max.update(&schema, &rec(0, 0, x), &mut v);
        }
        assert_eq!(max.render(&v), 99.0);

        let min = AggSpec::MinU64 { off: 16 };
        let mut v = vec![0u8; 8];
        (min.descriptor().init)(&mut v);
        for x in [5, 99, 12] {
            min.update(&schema, &rec(0, 0, x), &mut v);
        }
        assert_eq!(min.render(&v), 5.0);
    }

    #[test]
    fn approx_distinct_over_u64_field() {
        let schema = RecordSchema::plain(24);
        let d = AggSpec::ApproxDistinct { off: 16 };
        let mut v = vec![0u8; d.descriptor().fixed_size()];
        (d.descriptor().init)(&mut v);
        for x in 0..2000u64 {
            // Duplicate every item: distinct count must stay ~1000.
            d.update(&schema, &rec(0, 0, x % 1000), &mut v);
        }
        let est = d.render(&v);
        assert!((est - 1000.0).abs() / 1000.0 < 0.15, "est={est}");
    }

    #[test]
    fn mean_over_f64_field() {
        let schema = RecordSchema::plain(24);
        let mean = AggSpec::MeanF64 { off: 16 };
        let mut v = vec![0u8; 16];
        (mean.descriptor().init)(&mut v);
        for x in [1.0f64, 2.0, 6.0] {
            let mut r = rec(0, 0, 0);
            r[16..24].copy_from_slice(&x.to_le_bytes());
            mean.update(&schema, &r, &mut v);
        }
        assert_eq!(mean.render(&v), 3.0);
    }
}
