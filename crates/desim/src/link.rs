//! Bandwidth-paced transfer resources.
//!
//! A [`Link`] models one direction of one NIC port: transfers are serialized
//! in FIFO order at a fixed bandwidth. The RDMA fabric composes two links
//! (sender TX, receiver RX) plus a propagation latency into a cut-through
//! transfer model, which is what makes *incast* (many producers hammering
//! one consumer, the structural bottleneck of hash re-partitioning) show up
//! naturally in the simulation.

use crate::clock::{transfer_time, SimTime};

/// One direction of a network port with a fixed serialization bandwidth.
#[derive(Debug, Clone)]
pub struct Link {
    bytes_per_sec: u64,
    busy_until: SimTime,
    /// Total bytes serialized through this link.
    bytes_total: u64,
    /// Total time this link spent busy (for utilization reports).
    busy_time: SimTime,
}

impl Link {
    /// Create a link with the given serialization bandwidth in bytes/second.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "link bandwidth must be positive");
        Link {
            bytes_per_sec,
            busy_until: SimTime::ZERO,
            bytes_total: 0,
            busy_time: SimTime::ZERO,
        }
    }

    /// Bandwidth in bytes per second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Reserve the link for a `bytes`-long transfer that may start no
    /// earlier than `earliest`. Returns `(start, end)` of the serialization
    /// window and advances the link's busy horizon to `end`.
    pub fn reserve(&mut self, earliest: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let start = earliest.max(self.busy_until);
        let dur = transfer_time(bytes, self.bytes_per_sec);
        let end = start + dur;
        self.busy_until = end;
        self.bytes_total += bytes;
        self.busy_time += dur;
        (start, end)
    }

    /// The time at which the link next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes serialized so far.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Cumulative busy time (serialization only).
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Link utilization over `[0, now]`, in `0.0..=1.0`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.busy_time.as_nanos() as f64 / now.as_nanos() as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transfers_serialize() {
        // 1 GB/s -> 1 byte per ns.
        let mut l = Link::new(1_000_000_000);
        let (s1, e1) = l.reserve(SimTime::ZERO, 1000);
        assert_eq!((s1.0, e1.0), (0, 1000));
        // Second transfer requested at t=0 must queue behind the first.
        let (s2, e2) = l.reserve(SimTime::ZERO, 500);
        assert_eq!((s2.0, e2.0), (1000, 1500));
        assert_eq!(l.bytes_total(), 1500);
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut l = Link::new(1_000_000_000);
        l.reserve(SimTime::ZERO, 100);
        // Next transfer arrives long after the link went idle.
        let (s, e) = l.reserve(SimTime::from_nanos(10_000), 100);
        assert_eq!((s.0, e.0), (10_000, 10_100));
        assert_eq!(l.busy_time(), SimTime::from_nanos(200));
        // Utilization accounts only for busy time.
        let u = l.utilization(SimTime::from_nanos(10_100));
        assert!((u - 200.0 / 10_100.0).abs() < 1e-12);
    }

    #[test]
    fn saturated_link_reaches_full_utilization() {
        let mut l = Link::new(2_000_000_000);
        for _ in 0..100 {
            l.reserve(SimTime::ZERO, 4096);
        }
        let end = l.busy_until();
        assert!((l.utilization(end) - 1.0).abs() < 1e-9);
        assert_eq!(l.bytes_total(), 409_600);
    }
}
