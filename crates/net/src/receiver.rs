//! The consumer endpoint of an RDMA channel.

use slash_desim::{Sim, SimTime};
use slash_obs::{Cat, Obs, Stage};
use slash_rdma::{LocalSlice, Mr, Qp, RdmaError, RemoteKey, RemoteSlice, WorkRequest};

use crate::channel::ChannelConfig;
use crate::layout::{footer_offset, generation, Footer, MsgFlags, FOOTER_SIZE};
use crate::stats::ChannelStats;

/// Consumer endpoint.
///
/// Polls the footer byte of the next expected slot in its *local* ring
/// memory (remote producers push with WRITEs, so polling costs no network
/// traffic — the paper's argument for a push model, §6.3), processes the
/// payload in place, and returns credit by writing its cumulative consumed
/// count into the producer's credit counter.
pub struct ChannelReceiver {
    qp: Qp,
    /// Local ring the producer writes into.
    ring: Mr,
    /// Producer-side credit counter region.
    remote_credit: RemoteKey,
    /// 8-byte staging region for credit writes.
    credit_staging: Mr,
    cfg: ChannelConfig,
    next_seq: u64,
    /// Consumed buffers not yet covered by a credit message.
    unreturned: usize,
    eos_seen: bool,
    /// Fault injection (verification only): consume without returning credit.
    fault_drop_credits: bool,
    /// Statistics (throughput/latency drill-down).
    pub stats: ChannelStats,
    /// Trace handle (disabled by default); `(pid, tid)` lanes for events.
    obs: Obs,
    obs_pid: u32,
    obs_tid: u32,
}

impl ChannelReceiver {
    pub(crate) fn new(
        qp: Qp,
        ring: Mr,
        remote_credit: RemoteKey,
        credit_staging: Mr,
        cfg: ChannelConfig,
    ) -> Self {
        ChannelReceiver {
            qp,
            ring,
            remote_credit,
            credit_staging,
            cfg,
            next_seq: 0,
            unreturned: 0,
            eos_seen: false,
            fault_drop_credits: false,
            stats: ChannelStats::default(),
            obs: Obs::disabled(),
            obs_pid: 0,
            obs_tid: 0,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &ChannelConfig {
        &self.cfg
    }

    /// Attach a trace handle. `pid`/`tid` are the Perfetto lanes the verb
    /// events of this endpoint render under (node id / peer id by
    /// convention).
    pub fn instrument(&mut self, obs: Obs, pid: u32, tid: u32) {
        self.obs = obs;
        self.obs_pid = pid;
        self.obs_tid = tid;
    }

    /// Whether the producer has signalled end-of-stream and everything
    /// before it was consumed.
    pub fn eos(&self) -> bool {
        self.eos_seen
    }

    /// Sequence number of the next buffer expected.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Consumed buffers not yet covered by a credit message. Exposed so
    /// external checkers (the `slash-verify` race checker) can account for
    /// credit currently held on the consumer side.
    pub fn unreturned(&self) -> usize {
        self.unreturned
    }

    /// Fault injection (verification only): stop returning credit for
    /// consumed buffers, starving the producer. Used by `slash-verify`
    /// mutation tests to prove the credit-conservation invariant check
    /// actually fires. Never call this from protocol code.
    #[doc(hidden)]
    pub fn fault_skip_credit_return(&mut self) {
        self.fault_drop_credits = true;
    }

    /// Whether the underlying QP is in the error state (a work request was
    /// flushed by a fault). Credit writes are rejected until
    /// [`ChannelReceiver::reset`].
    pub fn is_error(&self) -> bool {
        self.qp.is_error()
    }

    /// Re-establish this endpoint after a fault: reset the QP (bumping the
    /// connection incarnation so stale in-flight writes are fenced), rewind
    /// the expected footer sequence to zero, and clear every slot's
    /// generation byte so half-written buffers from the previous incarnation
    /// can never satisfy [`ChannelReceiver::ready`]. The peer sender must
    /// call `ChannelSender::reset` for traffic to resume.
    pub fn reset(&mut self) {
        self.qp.reset();
        self.next_seq = 0;
        self.unreturned = 0;
        self.eos_seen = false;
        let m = self.cfg.buffer_size;
        for slot in 0..self.cfg.credits {
            let gen_off = footer_offset(slot, m) + FOOTER_SIZE - 1;
            // The ring was sized by `create_channel`, so this cannot be out
            // of bounds; ignore the Result to keep reset infallible.
            let _ = self.ring.write(gen_off, &[0]);
        }
    }

    /// Whether a buffer is ready without consuming it.
    pub fn ready(&self) -> bool {
        let slot = (self.next_seq % self.cfg.credits as u64) as usize;
        let foot_off = footer_offset(slot, self.cfg.buffer_size);
        self.ring.poll_byte(foot_off + FOOTER_SIZE - 1)
            == generation(self.next_seq, self.cfg.credits)
    }

    /// Poll for the next buffer; if one is ready, run `f` over
    /// `(flags, payload)` in place and return its result. Consuming the
    /// buffer returns credit to the producer (possibly batched).
    pub fn poll_with<R>(
        &mut self,
        sim: &mut Sim,
        f: impl FnOnce(MsgFlags, &[u8]) -> R,
    ) -> Result<Option<R>, RdmaError> {
        if !self.ready() {
            self.stats.on_empty_poll();
            return Ok(None);
        }
        let slot = (self.next_seq % self.cfg.credits as u64) as usize;
        let m = self.cfg.buffer_size;
        let foot_off = footer_offset(slot, m);
        let footer_read = self.ring.with(foot_off, FOOTER_SIZE, |b| {
            let mut us = [0u8; 8];
            us[..5].copy_from_slice(&b[10..15]);
            (Footer::decode(b), u64::from_le_bytes(us))
        });
        let (footer, sent_us) = match footer_read {
            Ok(v) => v,
            Err(e) => {
                // Decode error: the slot layout disagrees with the ring
                // bounds. Capture a flight-recorder dump and surface the
                // error instead of panicking.
                self.obs.record_failure(
                    &format!("channel footer decode out of ring bounds: {e:?}"),
                    &format!("seq={} slot={slot} foot_off={foot_off}", self.next_seq),
                );
                return Err(e);
            }
        };
        debug_assert_eq!(footer.seq32, self.next_seq as u32, "FIFO violated");
        let len = footer.len as usize;
        let payload_off = foot_off - len;
        let out = match self.ring.with(payload_off, len, |payload| f(footer.flags, payload)) {
            Ok(v) => v,
            Err(e) => {
                self.obs.record_failure(
                    &format!("channel payload decode out of ring bounds: {e:?}"),
                    &format!("seq={} len={len} payload_off={payload_off}", self.next_seq),
                );
                return Err(e);
            }
        };

        // Latency sample: send stamp (µs) → now. The same interval feeds
        // the channel-transit stage histogram (per buffer, not per record:
        // transit is a channel-level quantity).
        let now_ns = sim.now().as_nanos();
        let sent_ns = sent_us.saturating_mul(1_000);
        if now_ns >= sent_ns {
            self.stats.record_latency_ns(now_ns - sent_ns);
            self.obs.span_open(
                Stage::ChannelTransit,
                self.obs_pid,
                self.obs_tid,
                SimTime::from_nanos(sent_ns),
            );
            self.obs.span_close(
                Stage::ChannelTransit,
                self.obs_pid,
                self.obs_tid,
                sim.now(),
                1,
            );
        }

        if footer.flags.contains(MsgFlags::EOS) {
            self.eos_seen = true;
        }
        self.next_seq += 1;
        self.unreturned += 1;
        self.stats.on_buffer(len);
        self.obs.instant(
            Cat::Verb,
            "consume",
            self.obs_pid,
            self.obs_tid,
            sim.now(),
            &[("seq", self.next_seq - 1), ("len", len as u64)],
        );
        if (self.unreturned >= self.cfg.credit_batch || self.eos_seen) && !self.fault_drop_credits {
            self.return_credit(sim)?;
        }
        Ok(Some(out))
    }

    /// Convenience: copy the next buffer out, if ready.
    pub fn try_recv(&mut self, sim: &mut Sim) -> Result<Option<(MsgFlags, Vec<u8>)>, RdmaError> {
        self.poll_with(sim, |flags, payload| (flags, payload.to_vec()))
    }

    /// Write the cumulative consumed count into the producer's credit
    /// region (an 8-byte one-sided WRITE — the "credit transfer" of §6.2).
    fn return_credit(&mut self, sim: &mut Sim) -> Result<(), RdmaError> {
        self.credit_staging.write_u64(0, self.next_seq);
        self.qp.post_send(
            sim,
            WorkRequest::Write {
                wr_id: u64::MAX, // control message; never inspected
                local: LocalSlice::range(&self.credit_staging, 0, 8),
                remote: RemoteSlice {
                    key: self.remote_credit,
                    offset: 0,
                },
                signaled: false,
            },
        )?;
        self.unreturned = 0;
        self.stats.on_credit_msg();
        self.obs.instant(
            Cat::Verb,
            "credit-return",
            self.obs_pid,
            self.obs_tid,
            sim.now(),
            &[("acked", self.next_seq)],
        );
        Ok(())
    }
}

impl std::fmt::Debug for ChannelReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelReceiver")
            .field("node", &self.qp.local_node())
            .field("peer", &self.qp.peer_node())
            .field("next_seq", &self.next_seq)
            .field("eos", &self.eos_seen)
            .finish()
    }
}
