//! The `slash-lint` engine: a dependency-free static-analysis pass.
//!
//! Works on a *code view* of each source file — comments, string/char
//! literals, and `#[cfg(test)]` item bodies blanked out (newlines kept, so
//! line numbers survive) — and then matches rule tokens per line. This is
//! deliberately a text/token-level scanner, not a parser: it cannot be
//! fooled by occurrences inside comments or strings, and it has zero
//! external dependencies, so it runs in the fully offline CI environment.
//!
//! ## Rules
//!
//! | rule | scope | what it catches |
//! |------|-------|-----------------|
//! | `no-panic` | library code of `net`, `state`, `rdma`, `core`, `obs`, `chaos` | `.unwrap()`, `.expect(`, `panic!`, `todo!` outside `#[cfg(test)]` |
//! | `no-truncating-cast` | wire-format files (`net/src/layout.rs`, `state/src/delta.rs`) | narrowing `as u8/u16/u32/...` casts |
//! | `crate-attrs` | every crate root | missing `#![forbid(unsafe_code)]` or `#![deny(missing_docs)]` |
//! | `no-debug-print` | library code of protocol crates + `desim` + `obs` | `dbg!`, `println!` |
//! | `metrics-facade` | library code of `net`, `state`, `core`, `baselines` | direct `=`/`+=`/`-=` writes to counter fields of a `*stats`/`*metrics` value outside the facade files — counters must go through the mutator methods so the observability registry sees them |
//! | `no-unordered-map` | library code of `core`, `net`, `state`, `desim` | std `HashMap`/`HashSet` — iteration order is nondeterministic across runs and could leak into schedules, digests, or wire bytes; use `BTreeMap`/`BTreeSet` |
//! | `no-wallclock` | library code of every crate except `bench` (file-scoped carve-out: `exec/src/threaded.rs`, whose hang watchdog must read host time) | `Instant::now`/`SystemTime` — simulation code must use virtual `SimTime`; host time breaks replay determinism |
//! | `latency-span-pairs` | library code of `core`, `net`, `state`, `obs` | per file, the multiset of `.span_open(<stage>, ..)` first-argument tokens must equal the `.span_close(<stage>, ..)` multiset — an unbalanced pair silently drops stage-histogram samples |
//!
//! ## Allowlist & burn-down
//!
//! `crates/verify/lint-allow.txt` holds grandfathered budgets as
//! `<path> <rule> <count>` lines. A file/rule pair may have **at most** its
//! budgeted number of violations; fewer is *also* an error ("stale
//! allowlist") so the budget must be shrunk in the same change — the
//! allowlist can only ever burn down. A single line can be exempted with a
//! justifying comment containing `lint:ok(<rule>)` — and a waiver whose
//! line no longer violates that rule is itself a failure ("stale waiver"),
//! so suppressions can't outlive the code they excused.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose library code must not panic (the protocol crates: a panic
/// there is a protocol bug, not an application choice).
const NO_PANIC_CRATES: &[&str] = &["net", "state", "rdma", "core", "obs", "chaos"];

/// Crates whose library code must not debug-print.
const NO_PRINT_CRATES: &[&str] = &["net", "state", "rdma", "core", "desim", "obs", "chaos"];

/// Crates whose library code must mutate performance counters through the
/// facade methods (so every bump is also visible to the metrics registry).
const METRICS_FACADE_CRATES: &[&str] = &["net", "state", "core", "baselines"];

/// The facade implementations themselves: the only files allowed to touch
/// counter fields directly.
const METRICS_FACADE_EXEMPT: &[&str] =
    &["crates/net/src/stats.rs", "crates/core/src/metrics.rs"];

/// Counter fields of `ChannelStats` / `EngineMetrics` that the
/// `metrics-facade` rule protects from direct writes.
const METRIC_FIELDS: &[&str] = &[
    "buffers",
    "payload_bytes",
    "credit_stalls",
    "empty_polls",
    "credit_msgs",
    "latency",
    "instructions",
    "records",
    "l1_misses",
    "l2_misses",
    "llc_misses",
    "mem_bytes",
    "net_bytes",
    "state_updates",
];

/// Crates whose library code must balance latency-span pairs: every
/// `.span_open(<stage>, ..)` call needs a matching `.span_close(<stage>,
/// ..)` in the same file, or the stage histogram silently loses samples
/// (an unmatched close only bumps the `span_mismatch` counter).
const SPAN_PAIR_CRATES: &[&str] = &["core", "net", "state", "obs"];

/// Crates whose library state is simulation-visible: the iteration order
/// of a std `HashMap`/`HashSet` differs across processes (random hasher
/// seed) and could leak into event schedules, state digests, or wire
/// bytes — breaking the determinism the whole verification stack rests
/// on. Ordered containers only.
const NO_UNORDERED_CRATES: &[&str] = &["core", "net", "state", "desim"];

/// The only crate allowed to read the host wall clock (`Instant::now`,
/// `SystemTime`); everything else must use virtual `SimTime`.
const WALLCLOCK_EXEMPT_CRATES: &[&str] = &["bench"];

/// File-scoped wall-clock exemptions inside otherwise-checked crates.
/// The threaded executor is the one place that legitimately straddles
/// both clocks: each node thread advances its own virtual `SimTime`, but
/// hang detection across *real* peer threads can only be wall-clock (a
/// peer stalling does not advance anyone's virtual time). Nothing
/// schedule-visible derives from the reading — it only arms a watchdog.
const WALLCLOCK_EXEMPT_FILES: &[&str] = &["crates/exec/src/threaded.rs"];

/// Wire-format files where a silently truncating `as` cast can corrupt
/// bytes on the wire.
const WIRE_FILES: &[&str] = &["crates/net/src/layout.rs", "crates/state/src/delta.rs"];

/// Narrowing `as` targets flagged in wire-format files.
const NARROWING: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Workspace-relative path of the allowlist.
pub const ALLOWLIST_PATH: &str = "crates/verify/lint-allow.txt";

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `unwrap`/`expect`/`panic!`/`todo!` in protocol library code.
    NoPanic,
    /// No narrowing `as` casts in wire-format files.
    NoTruncatingCast,
    /// Crate roots must forbid unsafe code and deny missing docs.
    CrateAttrs,
    /// No `dbg!`/`println!` in library code.
    NoDebugPrint,
    /// No direct writes to metric counter fields outside the facades.
    MetricsFacade,
    /// No std `HashMap`/`HashSet` in sim-visible library code.
    NoUnorderedMap,
    /// No host wall-clock reads outside the bench crate.
    NoWallclock,
    /// `span_open`/`span_close` stage tokens must balance per file.
    LatencySpanPairs,
}

impl Rule {
    /// Stable kebab-case name (used in the allowlist and in output).
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NoTruncatingCast => "no-truncating-cast",
            Rule::CrateAttrs => "crate-attrs",
            Rule::NoDebugPrint => "no-debug-print",
            Rule::MetricsFacade => "metrics-facade",
            Rule::NoUnorderedMap => "no-unordered-map",
            Rule::NoWallclock => "no-wallclock",
            Rule::LatencySpanPairs => "latency-span-pairs",
        }
    }

    /// Parse a rule name as written in the allowlist.
    pub fn from_name(s: &str) -> Option<Rule> {
        match s {
            "no-panic" => Some(Rule::NoPanic),
            "no-truncating-cast" => Some(Rule::NoTruncatingCast),
            "crate-attrs" => Some(Rule::CrateAttrs),
            "no-debug-print" => Some(Rule::NoDebugPrint),
            "metrics-facade" => Some(Rule::MetricsFacade),
            "no-unordered-map" => Some(Rule::NoUnorderedMap),
            "no-wallclock" => Some(Rule::NoWallclock),
            "latency-span-pairs" => Some(Rule::LatencySpanPairs),
            _ => None,
        }
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description, including the offending token.
    pub message: String,
}

/// Result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub checked_files: usize,
    /// Violations covered by the allowlist (budget exactly met).
    pub grandfathered: usize,
    /// Violations suppressed by an inline `lint:ok(<rule>)` waiver.
    pub waived: usize,
    /// Violations beyond (or absent from) the allowlist — failures.
    pub new_violations: Vec<Violation>,
    /// Allowlist entries whose budget exceeds the real count — failures
    /// (the budget must be shrunk: burn-down only).
    pub stale_allowlist: Vec<String>,
    /// Inline waivers on lines that no longer violate the waived rule —
    /// failures (the waiver must be removed with the code it excused).
    pub stale_waivers: Vec<String>,
}

impl Report {
    /// Whether the run passed.
    pub fn clean(&self) -> bool {
        self.new_violations.is_empty()
            && self.stale_allowlist.is_empty()
            && self.stale_waivers.is_empty()
    }

    /// Render the human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.new_violations {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                v.file,
                v.line,
                v.rule.name(),
                v.message
            ));
        }
        for s in &self.stale_allowlist {
            out.push_str(&format!("allowlist: {s}\n"));
        }
        for s in &self.stale_waivers {
            out.push_str(&format!("stale waiver: {s}\n"));
        }
        out.push_str(&format!(
            "slash-lint: {} files checked, {} grandfathered, {} waived, {} new violation(s), {} stale allowlist entr(ies), {} stale waiver(s) — {}\n",
            self.checked_files,
            self.grandfathered,
            self.waived,
            self.new_violations.len(),
            self.stale_allowlist.len(),
            self.stale_waivers.len(),
            if self.clean() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// Render the report as JSON (hand-rolled; no serde in the tree).
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"checked_files\": {},\n", self.checked_files));
        out.push_str(&format!("  \"grandfathered\": {},\n", self.grandfathered));
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.new_violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
                esc(&v.file),
                v.line,
                v.rule.name(),
                esc(&v.message),
                if i + 1 < self.new_violations.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"stale_allowlist\": [\n");
        for (i, s) in self.stale_allowlist.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\"{}\n",
                esc(s),
                if i + 1 < self.stale_allowlist.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"stale_waivers\": [\n");
        for (i, s) in self.stale_waivers.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\"{}\n",
                esc(s),
                if i + 1 < self.stale_waivers.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Blank out comments, string literals, and char literals with spaces,
/// preserving newlines so byte offsets map to the same lines.
fn code_view(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    let blank = |c: u8| if c == b'\n' { b'\n' } else { b' ' };
    while i < b.len() {
        let c = b[i];
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                out.push(blank(b[i]));
                i += 1;
            }
        } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            // Rust block comments nest.
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == b'r' || c == b'b' {
            // Possible raw/byte string start: r", r#", br", b".
            let mut j = i + 1;
            if c == b'b' && j < b.len() && b[j] == b'r' {
                j += 1;
            }
            let mut hashes = 0;
            while j < b.len() && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            let is_raw = j > i + 1 || (c == b'r' && hashes == 0);
            if j < b.len() && b[j] == b'"' && (is_raw || c == b'b') {
                // Copy the prefix verbatim, then blank to the terminator
                // `"` followed by `hashes` pound signs (raw) or an
                // unescaped `"` (plain byte string).
                while i < j {
                    out.push(b[i]);
                    i += 1;
                }
                out.push(b' '); // the opening quote
                i += 1;
                if hashes > 0 || is_raw {
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                out.extend(std::iter::repeat_n(b' ', hashes + 1));
                                i += hashes + 1;
                                break 'raw;
                            }
                        }
                        out.push(blank(b[i]));
                        i += 1;
                    }
                } else {
                    while i < b.len() {
                        if b[i] == b'\\' && i + 1 < b.len() {
                            // An escaped newline (string line-continuation)
                            // must keep its newline or every later line
                            // number shifts.
                            out.push(b' ');
                            out.push(blank(b[i + 1]));
                            i += 2;
                        } else if b[i] == b'"' {
                            out.push(b' ');
                            i += 1;
                            break;
                        } else {
                            out.push(blank(b[i]));
                            i += 1;
                        }
                    }
                }
            } else {
                out.push(c);
                i += 1;
            }
        } else if c == b'"' {
            out.push(b' ');
            i += 1;
            while i < b.len() {
                if b[i] == b'\\' && i + 1 < b.len() {
                    // Keep escaped newlines: see the byte-string branch.
                    out.push(b' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                } else if b[i] == b'"' {
                    out.push(b' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
        } else if c == b'\'' {
            // Char literal vs lifetime: a char literal is 'x' or an escape.
            if i + 1 < b.len() && b[i + 1] == b'\\' {
                out.push(b' ');
                i += 1; // past '
                out.push(b' ');
                out.push(b' ');
                i += 2; // past \x
                while i < b.len() && b[i] != b'\'' {
                    out.push(blank(b[i]));
                    i += 1;
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            } else if i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                out.push(b' ');
                out.push(b' ');
                out.push(b' ');
                i += 3;
            } else {
                // A lifetime; copy the tick.
                out.push(c);
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    // `out` only ever contains bytes copied from valid UTF-8 or ASCII
    // spaces at char boundaries of removed regions; lossy keeps it total.
    String::from_utf8_lossy(&out).into_owned()
}

/// Blank the bodies of `#[cfg(test)]` items (mod/fn/impl) in a code view.
fn mask_cfg_test(code: &str) -> String {
    let marker = "#[cfg(test)]";
    let mut bytes = code.as_bytes().to_vec();
    let mut search_from = 0;
    loop {
        let hay = String::from_utf8_lossy(&bytes).into_owned();
        let Some(rel) = hay[search_from..].find(marker) else {
            break;
        };
        let start = search_from + rel;
        // Find the opening brace of the annotated item; give up at a `;`
        // at depth 0 (an item without a body, e.g. a gated `use`).
        let mut i = start + marker.len();
        let mut open = None;
        while i < bytes.len() {
            match bytes[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let Some(open) = open else {
            search_from = start + marker.len();
            continue;
        };
        let mut depth = 0usize;
        let mut end = open;
        for (j, &c) in bytes.iter().enumerate().skip(open) {
            match c {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                _ => {}
            }
        }
        for c in bytes.iter_mut().take(end + 1).skip(start) {
            if *c != b'\n' {
                *c = b' ';
            }
        }
        search_from = end + 1;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Whether byte `i` in `s` starts token `tok` at an identifier boundary
/// (the previous char must not be part of an identifier).
fn token_at(s: &str, i: usize, tok: &str) -> bool {
    if !s[i..].starts_with(tok) {
        return false;
    }
    if i == 0 {
        return true;
    }
    let prev = s.as_bytes()[i - 1];
    !(prev.is_ascii_alphanumeric() || prev == b'_')
}

/// Find all boundary-respecting occurrences of `tok` in `line`.
fn find_tokens(line: &str, tok: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(rel) = line[from..].find(tok) {
        let i = from + rel;
        if token_at(line, i, tok) {
            hits.push(i);
        }
        from = i + tok.len();
    }
    hits
}

/// Whether the original source line carries a `lint:ok(<rule>)` waiver.
fn line_waived(original_line: &str, rule: Rule) -> bool {
    original_line.contains(&format!("lint:ok({})", rule.name()))
}

/// All `lint:ok(<rule>)` markers in a file's original text (comments
/// included — that's where waivers live), as `(1-based line, rule)`.
/// Markers naming an unknown rule are ignored: they can't waive anything,
/// and doc prose legitimately writes placeholders like a bracketed rule.
fn waiver_markers(original: &str) -> Vec<(usize, Rule)> {
    let marker = "lint:ok(";
    let mut out = Vec::new();
    for (idx, line) in original.lines().enumerate() {
        let mut from = 0;
        while let Some(rel) = line[from..].find(marker) {
            let start = from + rel + marker.len();
            from = start;
            if let Some(len) = line[start..].find(')') {
                if let Some(rule) = Rule::from_name(&line[start..start + len]) {
                    out.push((idx + 1, rule));
                }
            }
        }
    }
    out
}

/// Which rule families apply to a given library file (derived from its
/// crate's membership in the scope consts).
#[derive(Debug, Clone, Copy, Default)]
struct Checks {
    panics: bool,
    prints: bool,
    metrics: bool,
    unordered: bool,
    wallclock: bool,
    span_pairs: bool,
}

impl Checks {
    fn for_crate(name: &str) -> Checks {
        Checks {
            panics: NO_PANIC_CRATES.contains(&name),
            prints: NO_PRINT_CRATES.contains(&name),
            metrics: METRICS_FACADE_CRATES.contains(&name),
            unordered: NO_UNORDERED_CRATES.contains(&name),
            wallclock: !WALLCLOCK_EXEMPT_CRATES.contains(&name),
            span_pairs: SPAN_PAIR_CRATES.contains(&name),
        }
    }

    fn any(self) -> bool {
        self.panics
            || self.prints
            || self.metrics
            || self.unordered
            || self.wallclock
            || self.span_pairs
    }
}

/// Collect `.{method}(` call sites in the code view, extracting each
/// call's first-argument token (whitespace/newline tolerant, so multi-line
/// calls resolve to the same token as single-line ones) and the 1-based
/// line of the call.
fn span_call_tokens(view: &str, method: &str) -> Vec<(String, usize)> {
    let pat = format!(".{method}(");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = view[from..].find(&pat) {
        let i = from + rel;
        from = i + pat.len();
        let line = view[..i].bytes().filter(|b| *b == b'\n').count() + 1;
        let tok: String = view[i + pat.len()..]
            .chars()
            .take_while(|c| *c != ',' && *c != ')')
            .filter(|c| !c.is_whitespace())
            .collect();
        out.push((tok, line));
    }
    out
}

/// Whole-file check: every `.span_open(<stage>, ..)` must have a matching
/// `.span_close(<stage>, ..)` in the same file (and vice versa), compared
/// as a multiset per first-argument token. An unbalanced pair silently
/// loses stage-histogram samples (open) or only bumps `span_mismatch`
/// (close), so the imbalance is a bug at the call site, not at runtime.
fn scan_span_pairs(rel: &str, view: &str, out: &mut Vec<Violation>) {
    let opens = span_call_tokens(view, "span_open");
    let closes = span_call_tokens(view, "span_close");
    let mut tokens: Vec<&str> = opens.iter().chain(&closes).map(|(t, _)| t.as_str()).collect();
    tokens.sort_unstable();
    tokens.dedup();
    for tok in tokens {
        let n_open = opens.iter().filter(|(t, _)| t == tok).count();
        let n_close = closes.iter().filter(|(t, _)| t == tok).count();
        if n_open != n_close {
            let line = opens
                .iter()
                .chain(&closes)
                .find(|(t, _)| t == tok)
                .map_or(1, |(_, l)| *l);
            out.push(Violation {
                file: rel.to_owned(),
                line,
                rule: Rule::LatencySpanPairs,
                message: format!(
                    "stage `{tok}` has {n_open} span_open but {n_close} span_close in this \
                     file — latency spans must balance per file"
                ),
            });
        }
    }
}

/// Detect a direct write to a protected metric field on this line:
/// `<ident ending in stats|metrics>.<field>` followed by `=`, `+=` or
/// `-=` (not `==` / `=>`). Returns the offending fields.
fn metric_field_writes(line: &str) -> Vec<&'static str> {
    let bytes = line.as_bytes();
    let mut hits = Vec::new();
    for field in METRIC_FIELDS {
        let tok = format!(".{field}");
        // Raw find, not `find_tokens`: the leading `.` is always preceded
        // by the receiver identifier, so the start boundary is the dot
        // itself. Only the trailing boundary needs checking (`.records`
        // must not match inside `.records_total`).
        let mut from = 0;
        while let Some(rel) = line[from..].find(&tok) {
            let i = from + rel;
            from = i + tok.len();
            let mut j = i + tok.len();
            if bytes.get(j).is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_') {
                continue;
            }
            // The receiver identifier must end with `stats` or `metrics`.
            let ident_end = i;
            let mut ident_start = ident_end;
            while ident_start > 0 {
                let c = bytes[ident_start - 1];
                if c.is_ascii_alphanumeric() || c == b'_' {
                    ident_start -= 1;
                } else {
                    break;
                }
            }
            let ident = &line[ident_start..ident_end];
            if !(ident.ends_with("stats") || ident.ends_with("metrics")) {
                continue;
            }
            // What follows must be an assignment operator.
            while bytes.get(j).is_some_and(|c| *c == b' ' || *c == b'\t') {
                j += 1;
            }
            let rest = &line[j.min(line.len())..];
            let is_write = rest.starts_with("+=")
                || rest.starts_with("-=")
                || (rest.starts_with('=')
                    && !rest.starts_with("==")
                    && !rest.starts_with("=>"));
            if is_write {
                hits.push(*field);
            }
        }
    }
    hits
}

/// Scan one library file's code view for every token-level rule, pushing
/// raw violations (inline waivers are resolved by the caller, which also
/// detects waivers that no longer suppress anything).
fn scan_file(rel: &str, original: &str, checks: Checks, out: &mut Vec<Violation>) {
    let view = mask_cfg_test(&code_view(original));
    let is_wire = WIRE_FILES.contains(&rel);
    let check_metrics = checks.metrics && !METRICS_FACADE_EXEMPT.contains(&rel);
    let check_wallclock = checks.wallclock && !WALLCLOCK_EXEMPT_FILES.contains(&rel);
    if checks.span_pairs {
        scan_span_pairs(rel, &view, out);
    }
    for (idx, line) in view.lines().enumerate() {
        if checks.panics {
            for tok in [".unwrap()", ".expect(", "panic!", "todo!"] {
                let hits = if tok.starts_with('.') {
                    // Method tokens need no boundary check: the dot is one.
                    let mut h = Vec::new();
                    let mut from = 0;
                    while let Some(rel_i) = line[from..].find(tok) {
                        h.push(from + rel_i);
                        from += rel_i + tok.len();
                    }
                    h
                } else {
                    find_tokens(line, tok)
                };
                for _ in hits {
                    out.push(Violation {
                        file: rel.to_owned(),
                        line: idx + 1,
                        rule: Rule::NoPanic,
                        message: format!(
                            "`{}` in protocol library code — return an error or prove the invariant locally",
                            tok.trim_start_matches('.')
                        ),
                    });
                }
            }
        }
        if checks.prints {
            for tok in ["dbg!", "println!"] {
                for _ in find_tokens(line, tok) {
                    out.push(Violation {
                        file: rel.to_owned(),
                        line: idx + 1,
                        rule: Rule::NoDebugPrint,
                        message: format!("`{tok}` in library code — use a stats counter or return data"),
                    });
                }
            }
        }
        if checks.unordered {
            for tok in ["HashMap", "HashSet"] {
                for _ in find_tokens(line, tok) {
                    out.push(Violation {
                        file: rel.to_owned(),
                        line: idx + 1,
                        rule: Rule::NoUnorderedMap,
                        message: format!(
                            "std `{tok}` in sim-visible library code — iteration order is \
                             nondeterministic; use `BTree{}` instead",
                            tok.trim_start_matches("Hash")
                        ),
                    });
                }
            }
        }
        if check_wallclock {
            for tok in ["Instant::now", "SystemTime"] {
                for _ in find_tokens(line, tok) {
                    out.push(Violation {
                        file: rel.to_owned(),
                        line: idx + 1,
                        rule: Rule::NoWallclock,
                        message: format!(
                            "`{tok}` outside the bench crate — simulation code must use \
                             virtual `SimTime`; host time breaks replay determinism"
                        ),
                    });
                }
            }
        }
        if check_metrics {
            for field in metric_field_writes(line) {
                out.push(Violation {
                    file: rel.to_owned(),
                    line: idx + 1,
                    rule: Rule::MetricsFacade,
                    message: format!(
                        "direct write to metric field `{field}` — use the ChannelStats/EngineMetrics facade methods so the observability registry sees the update"
                    ),
                });
            }
        }
        if is_wire {
            for target in NARROWING {
                let tok = format!("as {target}");
                for i in find_tokens(line, &tok) {
                    // The char after the target must not extend the type
                    // name (`as u32` must not match inside `as u32x4`).
                    let after = i + tok.len();
                    let boundary = line
                        .as_bytes()
                        .get(after)
                        .is_none_or(|c| !(c.is_ascii_alphanumeric() || *c == b'_'));
                    if boundary {
                        out.push(Violation {
                            file: rel.to_owned(),
                            line: idx + 1,
                            rule: Rule::NoTruncatingCast,
                            message: format!(
                                "narrowing `{tok}` cast in wire-format code — use a checked conversion or waive with a masked-width justification"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Check a crate root for the mandatory attributes.
fn scan_crate_root(rel: &str, original: &str, out: &mut Vec<Violation>) {
    for attr in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        if !original.contains(attr) {
            out.push(Violation {
                file: rel.to_owned(),
                line: 1,
                rule: Rule::CrateAttrs,
                message: format!("crate root missing `{attr}`"),
            });
        }
    }
}

/// Recursively collect `.rs` files under `dir`, skipping `bin/` (binaries
/// may print and exit; the rules target library code).
fn rs_files(dir: &Path, skip_bin: bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        if p.is_dir() {
            if skip_bin && p.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            rs_files(&p, skip_bin, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parse the allowlist into `(path, rule) -> budget`.
fn parse_allowlist(text: &str) -> Result<BTreeMap<(String, Rule), usize>, String> {
    let mut map = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(format!("allowlist line {}: expected `<path> <rule> <count>`", i + 1));
        }
        let rule = Rule::from_name(parts[1])
            .ok_or_else(|| format!("allowlist line {}: unknown rule `{}`", i + 1, parts[1]))?;
        let count: usize = parts[2]
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{}`", i + 1, parts[2]))?;
        if count == 0 {
            return Err(format!(
                "allowlist line {}: zero-count entry — delete the line instead",
                i + 1
            ));
        }
        if map.insert((parts[0].to_owned(), rule), count).is_some() {
            return Err(format!("allowlist line {}: duplicate entry", i + 1));
        }
    }
    Ok(map)
}

/// Run the full lint pass over the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, String> {
    let mut report = Report::default();
    let mut raw: Vec<Violation> = Vec::new();

    // Crate roots: the root package plus every crate under crates/.
    let mut roots = vec![root.join("src/lib.rs")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            let lib = d.join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    for p in &roots {
        let rel = rel_path(root, p);
        let src = fs::read_to_string(p).map_err(|e| format!("{rel}: {e}"))?;
        report.checked_files += 1;
        scan_crate_root(&rel, &src, &mut raw);
    }

    // Library sources of every crate with at least one applicable rule —
    // the wall-clock rule covers all crates except `bench`, so in practice
    // everything but `bench` is scanned.
    let mut lib_files: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            let name = d.file_name().map(|n| n.to_string_lossy().into_owned());
            let Some(name) = name else { continue };
            if Checks::for_crate(&name).any() {
                rs_files(&d.join("src"), true, &mut lib_files);
            }
        }
    }
    lib_files.sort();
    lib_files.dedup();
    let mut used_waivers: std::collections::BTreeSet<(String, usize, Rule)> =
        std::collections::BTreeSet::new();
    for p in &lib_files {
        let rel = rel_path(root, p);
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        let src = fs::read_to_string(p).map_err(|e| format!("{rel}: {e}"))?;
        report.checked_files += 1;
        let mut raw_file: Vec<Violation> = Vec::new();
        scan_file(&rel, &src, Checks::for_crate(crate_name), &mut raw_file);
        // Resolve inline waivers: a waived violation is suppressed (and
        // marks its waiver as earning its keep); everything else proceeds
        // to the allowlist stage.
        let lines: Vec<&str> = src.lines().collect();
        for v in raw_file {
            let orig = lines.get(v.line.saturating_sub(1)).copied().unwrap_or("");
            if line_waived(orig, v.rule) {
                used_waivers.insert((rel.clone(), v.line, v.rule));
                report.waived += 1;
            } else {
                raw.push(v);
            }
        }
        // A waiver that suppressed nothing is stale: the line it guards no
        // longer violates the rule it names.
        for (line_no, rule) in waiver_markers(&src) {
            if !used_waivers.contains(&(rel.clone(), line_no, rule)) {
                report.stale_waivers.push(format!(
                    "{rel}:{line_no}: waiver for `{}` but the line no longer violates it — remove the lint:ok comment",
                    rule.name()
                ));
            }
        }
    }

    // Apply the allowlist with burn-down semantics.
    let allow_text = fs::read_to_string(root.join(ALLOWLIST_PATH)).unwrap_or_default();
    let budgets = parse_allowlist(&allow_text)?;
    let mut actual: BTreeMap<(String, Rule), Vec<Violation>> = BTreeMap::new();
    for v in raw {
        actual.entry((v.file.clone(), v.rule)).or_default().push(v);
    }
    for ((file, rule), vs) in &actual {
        let budget = budgets.get(&(file.clone(), *rule)).copied().unwrap_or(0);
        if vs.len() > budget {
            report.new_violations.extend(vs.iter().cloned());
            if budget > 0 {
                report.stale_allowlist.push(format!(
                    "{file} {} budget {budget} exceeded: {} found",
                    rule.name(),
                    vs.len()
                ));
            }
        } else if vs.len() < budget {
            report.grandfathered += vs.len();
            report.stale_allowlist.push(format!(
                "{file} {} budget {budget} but only {} found — shrink the budget (burn-down only)",
                rule.name(),
                vs.len()
            ));
        } else {
            report.grandfathered += vs.len();
        }
    }
    // Budgets for pairs with zero actual violations are stale too.
    for ((file, rule), budget) in &budgets {
        if !actual.contains_key(&(file.clone(), *rule)) {
            report.stale_allowlist.push(format!(
                "{file} {} budget {budget} but 0 found — delete the entry (burn-down only)",
                rule.name()
            ));
        }
    }
    report.new_violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule))
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_view_blanks_comments_and_strings() {
        let src = "let a = 1; // unwrap() in a comment\nlet s = \".unwrap()\";\n/* panic! */ let b = 2;\n";
        let v = code_view(src);
        assert!(!v.contains("unwrap"));
        assert!(!v.contains("panic"));
        assert!(v.contains("let a = 1;"));
        assert!(v.contains("let b = 2;"));
        assert_eq!(v.lines().count(), src.lines().count());
    }

    #[test]
    fn code_view_keeps_escaped_newlines_in_strings() {
        // A `\`-line-continuation inside a string spans two source lines;
        // blanking the escaped newline used to shift every later line
        // number, misattributing violations and breaking inline waivers.
        let src = "let s = \"a \\\n   b\";\nx.unwrap();\n";
        let v = code_view(src);
        assert_eq!(v.lines().count(), src.lines().count());
        let at = v
            .lines()
            .position(|l| l.contains(".unwrap()"))
            .expect("unwrap survives outside strings");
        assert_eq!(at + 1, 3, "violation must stay on its source line");
    }

    #[test]
    fn code_view_handles_raw_strings_and_chars() {
        let src = "let r = r#\"todo!()\"#;\nlet c = '\"';\nlet lt: &'static str = x;\n";
        let v = code_view(src);
        assert!(!v.contains("todo!"));
        assert!(v.contains("'static"));
    }

    #[test]
    fn cfg_test_bodies_are_masked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() { y.unwrap(); }\n";
        let masked = mask_cfg_test(&code_view(src));
        let hits: Vec<usize> = masked
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains(".unwrap()"))
            .map(|(i, _)| i + 1)
            .collect();
        assert_eq!(hits, vec![6], "only the unwrap outside #[cfg(test)] remains");
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(find_tokens("panic!(\"x\")", "panic!").len() == 1);
        assert!(find_tokens("debug_panic!()", "panic!").is_empty());
        assert!(find_tokens("eprintln!(\"x\")", "println!").is_empty());
        assert!(find_tokens("println!(\"x\")", "println!").len() == 1);
    }

    #[test]
    fn metric_writes_detected_and_reads_ignored() {
        // Direct writes through a stats/metrics-named receiver are flagged.
        assert_eq!(metric_field_writes("sh.metrics.records += n;"), vec!["records"]);
        assert_eq!(
            metric_field_writes("sh.sender_metrics.mem_bytes += m;"),
            vec!["mem_bytes"]
        );
        assert_eq!(metric_field_writes("rx.stats.buffers = 0;"), vec!["buffers"]);
        assert_eq!(metric_field_writes("stats.l1_misses -= x;"), vec!["l1_misses"]);
        // Reads, comparisons, and method calls are not writes.
        assert!(metric_field_writes("let n = sh.metrics.records;").is_empty());
        assert!(metric_field_writes("if sh.metrics.records == 0 {").is_empty());
        assert!(metric_field_writes("rx.stats.latency.merge(&h);").is_empty());
        assert!(metric_field_writes("match sh.metrics.records => {").is_empty());
        // Receivers not named *stats/*metrics are out of scope.
        assert!(metric_field_writes("report.records += sh.records;").is_empty());
        assert!(metric_field_writes("self.buffers += 1;").is_empty());
        // Field-name boundary: `.records_total` is not `.records`.
        assert!(metric_field_writes("sh.metrics.records_total = 1;").is_empty());
    }

    #[test]
    fn span_pairs_balance_per_stage_token() {
        // Balanced: same stage token opens and closes, multi-line call.
        let balanced = "pub fn f(o: &Obs) {\n\
                        \x20   o.span_open(Stage::Source, 0, 1, t0);\n\
                        \x20   o.span_close(\n\
                        \x20       Stage::Source,\n\
                        \x20       0, 1, t1, n,\n\
                        \x20   );\n\
                        }\n";
        let mut out = Vec::new();
        let checks = Checks { span_pairs: true, ..Checks::default() };
        scan_file("crates/core/src/x.rs", balanced, checks, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Unbalanced: the close names a different stage.
        let unbalanced = "pub fn f(o: &Obs) {\n\
                          \x20   o.span_open(Stage::Source, 0, 1, t0);\n\
                          \x20   o.span_close(Stage::SsbApply, 0, 1, t1, n);\n\
                          }\n";
        let mut out = Vec::new();
        scan_file("crates/core/src/x.rs", unbalanced, checks, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|v| v.rule == Rule::LatencySpanPairs));
        assert!(out[0].message.contains("Stage::Source"));

        // Defining the facade (`pub fn span_open(`) is not a call site,
        // and calls inside #[cfg(test)] are masked.
        let defs = "pub fn span_open(&self) {}\n\
                    #[cfg(test)]\nmod tests {\n\
                    \x20   fn t(o: &Obs) { o.span_open(Stage::Source, 0, 1, t0); }\n\
                    }\n";
        let mut out = Vec::new();
        scan_file("crates/obs/src/x.rs", defs, checks, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn span_pairs_rule_roundtrips_its_name() {
        assert_eq!(Rule::LatencySpanPairs.name(), "latency-span-pairs");
        assert_eq!(
            Rule::from_name("latency-span-pairs"),
            Some(Rule::LatencySpanPairs)
        );
    }

    #[test]
    fn waiver_markers_parse_known_rules_only() {
        // Markers are built at runtime so this test file cannot itself be
        // mistaken for carrying (stale) waivers.
        let w = |r: &str| format!("// lint:ok({r})");
        let src = format!(
            "fn a() {{}} {}\nfn b() {{}}\nfn c() {{}} {} {}\n",
            w("no-panic"),
            w("bogus-rule"),
            w("no-wallclock")
        );
        let m = waiver_markers(&src);
        assert_eq!(m, vec![(1, Rule::NoPanic), (3, Rule::NoWallclock)]);
    }

    #[test]
    fn unordered_and_wallclock_tokens_detected() {
        let src = "use std::collections::HashMap;\n\
                   pub fn f() { let _ = std::time::Instant::now(); }\n\
                   pub fn g() { let _ = FxHashMap::default(); }\n\
                   pub fn h() { let _ = std::time::SystemTime::now(); }\n\
                   pub fn i(s: &std::collections::HashSet<u8>) {}\n";
        let mut out = Vec::new();
        let checks = Checks {
            unordered: true,
            wallclock: true,
            ..Checks::default()
        };
        scan_file("crates/core/src/x.rs", src, checks, &mut out);
        let got: Vec<(usize, Rule)> = out.iter().map(|v| (v.line, v.rule)).collect();
        assert_eq!(
            got,
            vec![
                (1, Rule::NoUnorderedMap),
                (2, Rule::NoWallclock),
                (4, Rule::NoWallclock),
                (5, Rule::NoUnorderedMap),
            ],
            "FxHashMap must not match; std HashMap/HashSet and both clock tokens must"
        );
    }

    #[test]
    fn wallclock_exemption_is_scoped_to_the_threaded_executor_file() {
        // The watchdog in the threaded executor is the one sanctioned
        // wall-clock reader outside `bench`; a sibling file in the same
        // crate gets no such pass.
        let src = "pub fn f() { let _ = std::time::Instant::now(); }\n";
        let checks = Checks {
            wallclock: true,
            ..Checks::default()
        };
        let mut out = Vec::new();
        scan_file("crates/exec/src/threaded.rs", src, checks, &mut out);
        assert!(out.is_empty(), "exempt file flagged: {out:?}");
        let mut out = Vec::new();
        scan_file("crates/exec/src/lib.rs", src, checks, &mut out);
        assert_eq!(out.len(), 1, "sibling file must still be checked");
        assert_eq!(out[0].rule, Rule::NoWallclock);
    }

    #[test]
    fn unordered_tokens_in_test_code_are_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let mut out = Vec::new();
        let checks = Checks {
            unordered: true,
            ..Checks::default()
        };
        scan_file("crates/core/src/x.rs", src, checks, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn allowlist_rejects_zero_and_duplicates() {
        assert!(parse_allowlist("a.rs no-panic 0").is_err());
        assert!(parse_allowlist("a.rs no-panic 1\na.rs no-panic 2").is_err());
        assert!(parse_allowlist("# comment\n\na.rs no-panic 3\n").is_ok());
        assert!(parse_allowlist("a.rs bogus-rule 3").is_err());
    }
}
