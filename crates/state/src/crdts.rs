//! Conflict-free replicated data types for window state (paper §5.1).
//!
//! Slash represents each window's partial state as a CRDT so that eagerly
//! computed per-node partials can be merged lazily in any order and any
//! grouping, and still converge to the sequential result:
//!
//! * non-holistic aggregations rely on a **commutative monoid** (merge is
//!   commutative + associative with an identity);
//! * holistic operators (joins) rely on the **join-semilattice of sets
//!   under union**, realized as appended entry lists (see
//!   [`crate::descriptor::ValueKind::Appended`]).
//!
//! Each CRDT here gives its encoded layout, the update used on the hot
//! path, and a [`StateDescriptor`] for the backend. The algebraic laws are
//! property-tested in `tests/crdt_laws.rs`.

use crate::descriptor::{StateDescriptor, ValueKind};

/// `u64` counter: update = add, merge = add, zero = 0. Used by the RO
/// benchmark (count occurrences) and YSB (count per campaign window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterCrdt;

impl CounterCrdt {
    /// Encoded size.
    pub const SIZE: usize = 8;

    /// Add `n` to the encoded counter. Short buffers (never produced by
    /// the backend, which sizes values from the descriptor) are left as-is.
    #[inline]
    pub fn add(value: &mut [u8], n: u64) {
        let Some(chunk) = value.first_chunk_mut::<8>() else {
            return;
        };
        *chunk = u64::from_le_bytes(*chunk).wrapping_add(n).to_le_bytes();
    }

    /// Read the counter (the identity, 0, on a short buffer).
    #[inline]
    pub fn get(value: &[u8]) -> u64 {
        value.first_chunk::<8>().map_or(0, |c| u64::from_le_bytes(*c))
    }

    fn init(value: &mut [u8]) {
        value[..8].fill(0);
    }

    fn merge(dst: &mut [u8], src: &[u8]) {
        Self::add(dst, Self::get(src));
    }

    /// Backend descriptor.
    pub fn descriptor() -> StateDescriptor {
        StateDescriptor {
            kind: ValueKind::Fixed { size: Self::SIZE },
            init: Self::init,
            merge: Self::merge,
            combinable: true,
        }
    }
}

/// `f64` sum: update = add, merge = add, zero = 0.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SumF64Crdt;

impl SumF64Crdt {
    /// Encoded size.
    pub const SIZE: usize = 8;

    /// Add `x` to the encoded sum. Short buffers are left as-is.
    #[inline]
    pub fn add(value: &mut [u8], x: f64) {
        let Some(chunk) = value.first_chunk_mut::<8>() else {
            return;
        };
        *chunk = (f64::from_le_bytes(*chunk) + x).to_le_bytes();
    }

    /// Read the sum (the identity, 0.0, on a short buffer).
    #[inline]
    pub fn get(value: &[u8]) -> f64 {
        value.first_chunk::<8>().map_or(0.0, |c| f64::from_le_bytes(*c))
    }

    fn init(value: &mut [u8]) {
        value[..8].copy_from_slice(&0f64.to_le_bytes());
    }

    fn merge(dst: &mut [u8], src: &[u8]) {
        Self::add(dst, Self::get(src));
    }

    /// Backend descriptor.
    pub fn descriptor() -> StateDescriptor {
        StateDescriptor {
            kind: ValueKind::Fixed { size: Self::SIZE },
            init: Self::init,
            merge: Self::merge,
            combinable: false,
        }
    }
}

/// `u64` maximum: update = max, merge = max, zero = 0 (prices and counts
/// in NEXMark are non-negative; use [`MinCrdt`]'s convention for the dual).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxCrdt;

impl MaxCrdt {
    /// Encoded size.
    pub const SIZE: usize = 8;

    /// Fold `x` into the encoded maximum. Short buffers are left as-is.
    #[inline]
    pub fn update(value: &mut [u8], x: u64) {
        let Some(chunk) = value.first_chunk_mut::<8>() else {
            return;
        };
        if x > u64::from_le_bytes(*chunk) {
            *chunk = x.to_le_bytes();
        }
    }

    /// Read the maximum (the identity, 0, on a short buffer).
    #[inline]
    pub fn get(value: &[u8]) -> u64 {
        value.first_chunk::<8>().map_or(0, |c| u64::from_le_bytes(*c))
    }

    fn init(value: &mut [u8]) {
        value[..8].fill(0);
    }

    fn merge(dst: &mut [u8], src: &[u8]) {
        Self::update(dst, Self::get(src));
    }

    /// Backend descriptor.
    pub fn descriptor() -> StateDescriptor {
        StateDescriptor {
            kind: ValueKind::Fixed { size: Self::SIZE },
            init: Self::init,
            merge: Self::merge,
            combinable: true,
        }
    }
}

/// `u64` minimum: update = min, merge = min, zero = `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MinCrdt;

impl MinCrdt {
    /// Encoded size.
    pub const SIZE: usize = 8;

    /// Fold `x` into the encoded minimum. Short buffers are left as-is.
    #[inline]
    pub fn update(value: &mut [u8], x: u64) {
        let Some(chunk) = value.first_chunk_mut::<8>() else {
            return;
        };
        if x < u64::from_le_bytes(*chunk) {
            *chunk = x.to_le_bytes();
        }
    }

    /// Read the minimum (`u64::MAX` when untouched or on a short buffer).
    #[inline]
    pub fn get(value: &[u8]) -> u64 {
        value
            .first_chunk::<8>()
            .map_or(u64::MAX, |c| u64::from_le_bytes(*c))
    }

    fn init(value: &mut [u8]) {
        value[..8].copy_from_slice(&u64::MAX.to_le_bytes());
    }

    fn merge(dst: &mut [u8], src: &[u8]) {
        Self::update(dst, Self::get(src));
    }

    /// Backend descriptor.
    pub fn descriptor() -> StateDescriptor {
        StateDescriptor {
            kind: ValueKind::Fixed { size: Self::SIZE },
            init: Self::init,
            merge: Self::merge,
            combinable: true,
        }
    }
}

/// Mean as a `(sum: f64, count: u64)` pair — the paper's example of a
/// sum-based CRDT: each node keeps partial sums, the final mean is computed
/// at trigger time. Used by the Cluster Monitoring benchmark (mean CPU per
/// job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeanCrdt;

impl MeanCrdt {
    /// Encoded size: sum (8) + count (8).
    pub const SIZE: usize = 16;

    /// Fold one observation into the pair. Short buffers are left as-is.
    #[inline]
    pub fn observe(value: &mut [u8], x: f64) {
        let Some((sum, rest)) = value.split_first_chunk_mut::<8>() else {
            return;
        };
        let Some(cnt) = rest.first_chunk_mut::<8>() else {
            return;
        };
        *sum = (f64::from_le_bytes(*sum) + x).to_le_bytes();
        *cnt = u64::from_le_bytes(*cnt).wrapping_add(1).to_le_bytes();
    }

    /// Read `(sum, count)` (the identity, `(0.0, 0)`, on a short buffer).
    #[inline]
    pub fn get(value: &[u8]) -> (f64, u64) {
        let Some((sum, rest)) = value.split_first_chunk::<8>() else {
            return (0.0, 0);
        };
        (
            f64::from_le_bytes(*sum),
            rest.first_chunk::<8>().map_or(0, |c| u64::from_le_bytes(*c)),
        )
    }

    /// The mean, if any observation was folded in.
    pub fn mean(value: &[u8]) -> Option<f64> {
        let (sum, cnt) = Self::get(value);
        (cnt > 0).then(|| sum / cnt as f64)
    }

    fn init(value: &mut [u8]) {
        value[..16].fill(0);
        value[..8].copy_from_slice(&0f64.to_le_bytes());
    }

    fn merge(dst: &mut [u8], src: &[u8]) {
        let (s2, c2) = Self::get(src);
        let (s1, c1) = Self::get(dst);
        dst[..8].copy_from_slice(&(s1 + s2).to_le_bytes());
        dst[8..16].copy_from_slice(&(c1 + c2).to_le_bytes());
    }

    /// Backend descriptor.
    pub fn descriptor() -> StateDescriptor {
        StateDescriptor {
            kind: ValueKind::Fixed { size: Self::SIZE },
            init: Self::init,
            merge: Self::merge,
            combinable: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zeroed(d: &StateDescriptor) -> Vec<u8> {
        let mut v = vec![0u8; d.fixed_size()];
        (d.init)(&mut v);
        v
    }

    #[test]
    fn counter_update_and_merge() {
        let d = CounterCrdt::descriptor();
        let mut a = zeroed(&d);
        let mut b = zeroed(&d);
        CounterCrdt::add(&mut a, 5);
        CounterCrdt::add(&mut b, 7);
        (d.merge)(&mut a, &b);
        assert_eq!(CounterCrdt::get(&a), 12);
    }

    #[test]
    fn sum_f64() {
        let d = SumF64Crdt::descriptor();
        let mut a = zeroed(&d);
        SumF64Crdt::add(&mut a, 1.5);
        SumF64Crdt::add(&mut a, 2.25);
        assert_eq!(SumF64Crdt::get(&a), 3.75);
    }

    #[test]
    fn max_and_min_identities() {
        let dmax = MaxCrdt::descriptor();
        let mut m = zeroed(&dmax);
        assert_eq!(MaxCrdt::get(&m), 0, "max identity");
        MaxCrdt::update(&mut m, 9);
        MaxCrdt::update(&mut m, 3);
        assert_eq!(MaxCrdt::get(&m), 9);

        let dmin = MinCrdt::descriptor();
        let mut n = zeroed(&dmin);
        assert_eq!(MinCrdt::get(&n), u64::MAX, "min identity");
        MinCrdt::update(&mut n, 9);
        MinCrdt::update(&mut n, 3);
        assert_eq!(MinCrdt::get(&n), 3);
    }

    #[test]
    fn mean_pairs_merge_like_partial_sums() {
        let d = MeanCrdt::descriptor();
        let mut a = zeroed(&d);
        let mut b = zeroed(&d);
        MeanCrdt::observe(&mut a, 10.0);
        MeanCrdt::observe(&mut a, 20.0);
        MeanCrdt::observe(&mut b, 30.0);
        (d.merge)(&mut a, &b);
        assert_eq!(MeanCrdt::get(&a), (60.0, 3));
        assert_eq!(MeanCrdt::mean(&a), Some(20.0));
        assert_eq!(MeanCrdt::mean(&zeroed(&d)), None);
    }

    #[test]
    fn idempotent_merges_for_semilattice_crdts() {
        // min/max are join-semilattices: merging a state with itself is a
        // no-op. (Counters/sums are *not* idempotent — they are commutative
        // monoids over disjoint partials, which the epoch protocol
        // guarantees by invalidating shipped deltas.)
        let d = MaxCrdt::descriptor();
        let mut a = vec![0u8; 8];
        (d.init)(&mut a);
        MaxCrdt::update(&mut a, 123);
        let snapshot = a.clone();
        (d.merge)(&mut a, &snapshot);
        assert_eq!(a, snapshot);
    }
}
