#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-net — RDMA data channels (paper §6)
//!
//! The RDMA channel is Slash's unit of data movement: a credit-based,
//! FIFO, zero-copy circular queue shared between one producer and one
//! consumer over a reliable RDMA connection. The same channel implements
//! data re-partitioning in the RDMA UpPar baseline and ingestion/state
//! synchronization in Slash itself.
//!
//! Protocol (paper §6.2):
//!
//! * **Setup phase** — both sides allocate a circular queue of `c`
//!   fixed-size RDMA-registered buffers; `c` is the credit budget and the
//!   pipelining depth. The producer additionally registers an 8-byte credit
//!   counter the consumer writes into.
//! * **Transfer phase** — the producer ① acquires the next free slot,
//!   ② posts a single one-sided `RDMA WRITE` carrying payload *and* footer,
//!   ③ polls its local credit counter. The consumer ① polls the footer's
//!   final byte of the expected slot, ② processes the payload in place,
//!   ③ returns a credit by writing its cumulative consumed count back.
//!
//! Invariants (tested, including property-based): FIFO delivery; a producer
//! never overwrites an unread buffer; credits are conserved
//! (`available + in_flight + unconsumed == c`); a producer with zero
//! credits cannot post.
//!
//! ## Message layout
//!
//! Each slot is `[padding | payload | footer]` with the 16-byte footer at
//! the *end* of the slot and the payload right-aligned against it. A single
//! contiguous WRITE of `len + 16` bytes therefore carries payload and
//! footer, and polling the footer's last byte guarantees the payload
//! preceding it has fully landed (WRITEs land low-to-high). The poll byte
//! is a per-wrap *generation* so slot reuse needs no cleanup writes.
//!
//! The crate also provides [`socket::SocketSender`]/[`socket::SocketReceiver`],
//! a socket-style (IPoIB) channel with kernel-copy and syscall costs, used by the Flink baseline.

pub mod channel;
pub mod layout;
pub mod receiver;
pub mod sender;
pub mod socket;
pub mod spsc;
pub mod stats;

pub use channel::{create_channel, ChannelConfig, RECONNECT_HANDSHAKE_MSGS};
pub use layout::{Footer, MsgFlags, FOOTER_SIZE};
pub use receiver::ChannelReceiver;
pub use sender::ChannelSender;
pub use socket::{socket_pair, SocketConfig, SocketReceiver, SocketSender};
pub use spsc::{spsc_channel, SpscReceiver, SpscSender};
pub use stats::ChannelStats;
