#!/usr/bin/env bash
# Full verification gate for the workspace. Run from anywhere inside the
# repo; every step is offline and deterministic. Order is cheapest-first
# so failures surface fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/12] build (release, all targets)"
cargo build --release --workspace

echo "==> [2/12] tests (unit + integration + fixtures + mutations)"
cargo test --workspace -q

echo "==> [3/12] clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/12] slash-lint (custom static analysis, burn-down allowlist)"
cargo run --release -p slash-verify --bin slash-lint

echo "==> [5/12] slash-race (schedule exploration smoke: 128 tie-breaks)"
cargo run --release -p slash-verify --bin slash-race -- --seeds 128

echo "==> [6/12] flight recorder (planted bug must be caught and dumped)"
cargo run --release -p slash-verify --bin slash-race -- --mutation ignore-credit-window >/dev/null
cargo run --release -p slash-verify --bin slash-race -- --mutation regress-vclock >/dev/null
echo "flight recorder: both planted bugs caught with dumps"

echo "==> [7/12] traced example (deterministic trace, validated JSON)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
SLASH_TRACE_OUT="$trace_dir/a.json" cargo run --release --example ysb_pipeline >/dev/null
SLASH_TRACE_OUT="$trace_dir/b.json" cargo run --release --example ysb_pipeline >/dev/null
cmp "$trace_dir/a.json" "$trace_dir/b.json"
echo "trace: two same-seed runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/a.json"

echo "==> [8/12] chaos suite (every fault type recovers to the no-fault state)"
cargo run --release --bin chaos-suite

echo "==> [9/12] recovery golden trace (failover example, byte-identical + validated)"
SLASH_TRACE_OUT="$trace_dir/f_a.json" cargo run --release --example failover >/dev/null
SLASH_TRACE_OUT="$trace_dir/f_b.json" cargo run --release --example failover >/dev/null
cmp "$trace_dir/f_a.json" "$trace_dir/f_b.json"
echo "recovery trace: two same-seed chaos runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/f_a.json"

echo "==> [10/12] hot-path perf smoke (wall-clock, combiner on vs off)"
# Writes BENCH_hotpath.json and exits non-zero if the combiner-on hot
# loop is below 1.3x the per-record path on ysb_hot, or if any
# workload's on/off state digests diverge.
cargo run --release -p slash-bench --bin hotpath-bench -- --quick --out BENCH_hotpath.json

echo "==> [11/12] cascading-fault matrix (compound faults converge exactly, golden traces)"
# Release-mode run of the compound-fault tests: concurrent crashes,
# buddy-dead re-selection, crash-during-recovery re-entrancy, wpn=2
# promotion, and the same-seed byte-identical cascade trace. (Stage 8's
# chaos-suite run covers the same matrix as a binary gate; this stage adds
# the trace-level golden assertions.)
cargo test --release --test chaos -q

echo "==> [12/12] exhaustive model checker (bounded DFS over same-instant schedules)"
# Enumerates every distinct same-instant schedule of the 2-node
# FIFO/credit scenario (literal, dedup-free pass must drain the frontier
# with zero pruning) plus the single-crash recovery scenario (complete
# under state-digest dedup). The binary encodes the coverage floors and
# fails on any regression or on silent frontier truncation; a truncated
# scenario must fall back to the random sweep and still come back clean.
mkdir -p results
cargo run --release -p slash-verify --bin slash-race -- \
    --exhaustive --minimize --out results/race_coverage.json
echo "race coverage report: results/race_coverage.json"
# Planted mutants must fall to the exhaustive explorer with a minimized
# reproducing schedule, not just to the random sweep.
cargo run --release -p slash-verify --bin slash-race -- \
    --exhaustive --minimize --mutation skip-credit-return >/dev/null
cargo run --release -p slash-verify --bin slash-race -- \
    --exhaustive --minimize --mutation reorder-delivered >/dev/null
echo "exhaustive: both planted mutants caught and minimized"

echo "ci: all gates green"
