//! The per-node SSB facade: routing, epochs, triggering (§7).

use std::collections::BTreeMap;

use slash_desim::{Sim, SimTime};
use slash_net::{create_channel, ChannelConfig};
use slash_obs::{HeatSketch, Obs, Stage, HEAT_CAPACITY};
use slash_rdma::{Fabric, NodeId};

use crate::coherence::{DeltaReceiver, DeltaSender, StateError};
use crate::combiner::WriteCombiner;
use crate::descriptor::StateDescriptor;
use crate::hash::{pack_key, partition_of, unpack_key, StateKey};
use crate::partition::Partition;
use crate::split::{SplitLedger, SUB_KEY_TAG};
use crate::vclock::VectorClock;

/// SSB-wide configuration.
#[derive(Debug, Clone, Copy)]
pub struct SsbConfig {
    /// Executors (== partitions: one primary per node, §7.2.2 setup).
    pub nodes: usize,
    /// Close an epoch after this many bytes of state updates (the paper
    /// configures "the epoch of SSB to end every 64 MB of data").
    pub epoch_bytes: u64,
    /// RDMA channel configuration for delta shipping.
    pub channel: ChannelConfig,
}

impl SsbConfig {
    /// Paper-default configuration for `nodes` executors.
    pub fn new(nodes: usize) -> Self {
        SsbConfig {
            nodes,
            epoch_bytes: 64 * 1024 * 1024,
            channel: ChannelConfig::default(),
        }
    }
}

/// A `(window, key)` state value surfaced by a window trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggeredValue {
    /// Window identifier (high half of the state key).
    pub window_id: u64,
    /// Group key (low half of the state key).
    pub key: u64,
    /// The merged state.
    pub data: TriggeredData,
}

/// Payload of a triggered value.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggeredData {
    /// Fixed-size CRDT state (aggregations).
    Fixed(Vec<u8>),
    /// Holistic element list, newest first (joins).
    Elements(Vec<Vec<u8>>),
}

/// One executor's view of the distributed state backend.
///
/// Holds the primary partition it leads, a fragment of every remote
/// partition, the delta channels, and the vector clock. Not `Send`: each
/// node lives inside the deterministic simulation.
pub struct SsbNode {
    node: usize,
    cfg: SsbConfig,
    fragments: Vec<Partition>,
    /// Outbound delta shipping, indexed by partition; `None` at `node`.
    senders: Vec<Option<DeltaSender>>,
    receivers: Vec<DeltaReceiver>,
    vclock: VectorClock,
    bytes_since_epoch: u64,
    local_watermark: u64,
    obs: Obs,
    /// Per-key heat sketch (SpaceSaving top-k over group keys). `None`
    /// unless the node is instrumented, so the uninstrumented hot path
    /// pays a single branch and no sketch maintenance.
    heat: Option<HeatSketch>,
    /// State updates routed to each partition since construction
    /// (published as `partition_updates` counters).
    part_updates: Vec<u64>,
    /// State updates applied in the open epoch (published as the
    /// `records_per_epoch` gauge when the epoch closes).
    epoch_updates: u64,
    /// Hot-key split ledger (see [`crate::split`]); `None` unless the
    /// driver enables splitting, so the default drain path is untouched.
    /// Every node carries an identical copy, kept in sync by the split
    /// driver activating keys on all nodes in one simulation step.
    split: Option<SplitLedger>,
}

impl SsbNode {
    /// The executor index this node represents.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The backend's vector clock.
    pub fn vclock(&self) -> &VectorClock {
        &self.vclock
    }

    /// Mutable access to the vector clock, bypassing the protocol.
    ///
    /// Fault-injection hook for the `slash-verify` race checker's mutation
    /// tests (regressing a slot must be detectable). Never call this from
    /// protocol code.
    #[doc(hidden)]
    pub fn fault_vclock_mut(&mut self) -> &mut VectorClock {
        &mut self.vclock
    }

    /// This executor's current low watermark.
    pub fn local_watermark(&self) -> u64 {
        self.local_watermark
    }

    /// Which partition a key routes to.
    pub fn partition_of(&self, key: StateKey) -> usize {
        partition_of(key, self.cfg.nodes)
    }

    /// Cumulative state updates routed to each partition since
    /// construction — the load signal elastic scale controllers consume.
    /// All zeros unless the node is instrumented (telemetry is free off).
    pub fn partition_updates(&self) -> &[u64] {
        &self.part_updates
    }

    /// Account one state update for the heat/partition telemetry. Only
    /// instrumented nodes carry a sketch; the common uninstrumented case
    /// is one branch.
    #[inline]
    fn note_update(&mut self, key: StateKey, p: usize, weight: u64) {
        if let Some(h) = self.heat.as_mut() {
            h.observe(unpack_key(key).1, weight);
            self.part_updates[p] += weight;
            self.epoch_updates += weight;
        }
    }

    /// Read-modify-write: the eager per-record update of partial state —
    /// Slash's common-case operation (§7.1.2). Routes to the key's
    /// partition fragment; no re-partitioning, no queueing.
    pub fn rmw(&mut self, key: StateKey, update: impl FnOnce(&mut [u8])) {
        let p = self.partition_of(key);
        self.fragments[p].rmw(key, update);
        self.bytes_since_epoch += self.fragments[p].descriptor().fixed_size() as u64 + 32;
        self.note_update(key, p, 1);
    }

    /// Append an element to holistic state.
    pub fn append(&mut self, key: StateKey, elem: &[u8]) {
        let p = self.partition_of(key);
        self.fragments[p].append(key, elem);
        self.bytes_since_epoch += elem.len() as u64 + 32;
        self.note_update(key, p, 1);
    }

    /// Flush a worker's [`WriteCombiner`] — the batched counterpart of
    /// per-record [`Self::rmw`]: every distinct `(window, key)` partial is
    /// routed to its partition fragment and merged in one batched
    /// index-probe pass per fragment ([`Partition::merge_batch`]). Clears
    /// the combiner and returns how many distinct entries flushed. Epoch
    /// byte-accounting advances per flushed entry, not per folded record:
    /// the open delta really is that much smaller — write combining is
    /// also coalescing the coherence traffic.
    pub fn rmw_batch(&mut self, comb: &mut WriteCombiner) -> u64 {
        let n = comb.len();
        if n == 0 {
            return 0;
        }
        if self.cfg.nodes == 1 {
            // Single-node fast path: everything routes to the one fragment.
            let sel: Vec<u32> = (0..n as u32).collect();
            self.fragments[0].merge_batch(comb, &sel);
        } else {
            // Group combiner entries by destination partition, preserving
            // insertion order within each group (stable bucket scan).
            let mut sel: Vec<u32> = Vec::with_capacity(n);
            for p in 0..self.cfg.nodes {
                sel.clear();
                for i in 0..n {
                    if self.partition_of(comb.entry(i).0) == p {
                        sel.push(i as u32);
                    }
                }
                if !sel.is_empty() {
                    self.fragments[p].merge_batch(comb, &sel);
                }
            }
        }
        let per_entry = self.fragments[0].descriptor().fixed_size() as u64 + 32;
        self.bytes_since_epoch += per_entry * n as u64;
        if self.heat.is_some() {
            // Telemetry pass before the combiner clears: the fold count of
            // each entry is the true per-key update weight the combiner
            // absorbed on the worker's behalf.
            for i in 0..n {
                let key = comb.entry(i).0;
                let w = comb.entry_folds(i);
                let p = self.partition_of(key);
                self.note_update(key, p, w);
            }
        }
        comb.clear();
        n as u64
    }

    /// Append a batch of holistic elements (the batched counterpart of
    /// [`Self::append`]): elements stay in record order per fragment, with
    /// one index probe and one upsert per distinct key
    /// ([`Partition::append_batch`]). `keys[i]`'s element is
    /// `elems[i*stride..(i+1)*stride]`. Returns the number of distinct
    /// keys the batch touched (keys route to exactly one partition, so
    /// per-fragment counts sum to the global count).
    pub fn append_batch(&mut self, keys: &[StateKey], elems: &[u8], stride: usize) -> u64 {
        if keys.is_empty() {
            return 0;
        }
        let mut distinct = 0u64;
        if self.cfg.nodes == 1 {
            distinct += self.fragments[0].append_batch(keys, elems, stride);
        } else {
            // Split by destination, keeping record order within each.
            let mut part_keys: Vec<StateKey> = Vec::with_capacity(keys.len());
            let mut part_elems: Vec<u8> = Vec::with_capacity(elems.len());
            for p in 0..self.cfg.nodes {
                part_keys.clear();
                part_elems.clear();
                for (i, &key) in keys.iter().enumerate() {
                    if self.partition_of(key) == p {
                        part_keys.push(key);
                        part_elems.extend_from_slice(&elems[i * stride..(i + 1) * stride]);
                    }
                }
                if !part_keys.is_empty() {
                    distinct += self.fragments[p].append_batch(&part_keys, &part_elems, stride);
                }
            }
        }
        self.bytes_since_epoch += (stride as u64 + 32) * keys.len() as u64;
        if self.heat.is_some() {
            for &key in keys {
                let p = self.partition_of(key);
                self.note_update(key, p, 1);
            }
        }
        distinct
    }

    /// Read fixed state from the local fragment (diagnostics; consistent
    /// reads come from the leader after merging).
    pub fn local_get(&self, key: StateKey) -> Option<&[u8]> {
        self.fragments[self.partition_of(key)].get(key)
    }

    /// Advance the executor's low watermark (max event time processed).
    pub fn note_progress(&mut self, watermark: u64) {
        if watermark > self.local_watermark {
            self.local_watermark = watermark;
        }
    }

    /// Close an epoch if enough update volume accumulated. Returns true if
    /// an epoch was closed.
    pub fn maybe_close_epoch(&mut self, sim: &mut Sim) -> Result<Option<u64>, StateError> {
        if self.bytes_since_epoch >= self.cfg.epoch_bytes {
            return self.close_epoch(sim).map(Some);
        }
        Ok(None)
    }

    /// Close the open epoch now (§7.2.2 synchronization phase): ship every
    /// dirty fragment's delta toward its leader and advance our own
    /// vector-clock slot. Also called ahead of schedule on window triggers
    /// ("a Slash instance signals the ahead-of-time termination of an
    /// epoch upon window triggering").
    pub fn close_epoch(&mut self, sim: &mut Sim) -> Result<u64, StateError> {
        let wm = self.local_watermark;
        let now = sim.now();
        let mut delta_bytes = 0;
        for p in 0..self.cfg.nodes {
            if p == self.node {
                continue;
            }
            delta_bytes += self.fragments[p].dirty_bytes();
            // `build_cluster` creates a sender for every remote partition;
            // a missing one would be a wiring bug, not a runtime condition.
            let Some(sender) = self.senders[p].as_mut() else {
                debug_assert!(false, "sender exists for every remote partition");
                continue;
            };
            sender.enqueue_epoch(&mut self.fragments[p], wm, now);
            // A faulted channel (QP in error state) is not a protocol
            // error: the epoch stays queued (and retained, in
            // fault-tolerant runs) until recovery re-establishes the
            // channel. Anything else is a real bug and propagates.
            match sender.pump(sim) {
                Ok(_) | Err(slash_rdma::RdmaError::QpError) => {}
                Err(e) => return Err(e.into()),
            }
        }
        self.vclock.update(self.node, wm);
        self.bytes_since_epoch = 0;
        if self.heat.is_some() {
            self.obs.gauge_set(
                "records_per_epoch",
                &format!("node{}", self.node),
                self.epoch_updates as f64,
            );
            self.epoch_updates = 0;
        }
        Ok(delta_bytes)
    }

    /// Make progress on delta shipping and merging. Returns
    /// `(chunks_sent, entries_merged)`; the engine calls this from its
    /// RDMA coroutines.
    ///
    /// Channels whose QP sits in the error state (fault window, awaiting
    /// recovery) are skipped rather than surfaced: the recovery
    /// orchestrator detects them via [`SsbNode::sender_error`] /
    /// [`SsbNode::receiver_error`] and the stalled epoch token.
    pub fn pump(&mut self, sim: &mut Sim) -> Result<(u64, u64), StateError> {
        let mut sent = 0;
        for s in self.senders.iter_mut().flatten() {
            match s.pump(sim) {
                Ok(n) => sent += n as u64,
                Err(slash_rdma::RdmaError::QpError) => {}
                Err(e) => return Err(StateError::Rdma(e)),
            }
        }
        let mut merged = 0;
        let primary_idx = self.node;
        for i in 0..self.receivers.len() {
            match self.receivers[i].pump(sim, &mut self.fragments[primary_idx], &mut self.vclock)
            {
                Ok(n) => merged += n,
                Err(StateError::Rdma(slash_rdma::RdmaError::QpError)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok((sent, merged))
    }

    /// Whether all shipped deltas left this node (no sender backlog).
    pub fn flushed(&self) -> bool {
        self.senders
            .iter()
            .flatten()
            .all(|s| s.backlog() == 0)
    }

    /// Whether any fragment holds updates in the open epoch.
    pub fn dirty(&self) -> bool {
        self.fragments
            .iter()
            .enumerate()
            .any(|(p, f)| p != self.node && f.is_dirty())
    }

    // ------------------------------------------------------------------
    // Hot-key splitting (see [`crate::split`]).
    // ------------------------------------------------------------------

    /// Install an (empty) split ledger, making this node split-capable,
    /// and enable the heat sketch so the split director has a signal even
    /// on otherwise uninstrumented runs. Idempotent.
    pub fn split_enable(&mut self) {
        if self.split.is_none() {
            self.split = Some(SplitLedger::new(self.cfg.nodes));
        }
        if self.heat.is_none() {
            self.heat = Some(HeatSketch::new(HEAT_CAPACITY));
        }
    }

    /// Activate splitting for group key `gk` on this node's ledger copy.
    /// Rejected (returning `false`) without a ledger, for holistic or
    /// non-combinable state (regrouping must be exact — the combiner's
    /// gate), and for keys the ledger itself refuses.
    pub fn split_activate(&mut self, gk: u64) -> bool {
        let desc = self.fragments[self.node].descriptor();
        if desc.is_appended() || !desc.combinable {
            return false;
        }
        self.split.as_mut().is_some_and(|l| l.split(gk))
    }

    /// The split ledger's change counter; `0` when splitting is disabled
    /// or no key is split — the hot path's one-compare fast path.
    pub fn split_version(&self) -> u64 {
        self.split.as_ref().map_or(0, |l| l.version())
    }

    /// Active split canonical keys (ascending); empty when disabled.
    pub fn split_keys(&self) -> Vec<u64> {
        self.split.as_ref().map_or_else(Vec::new, |l| l.split_keys())
    }

    /// `(canonical, sub)` salt pairs for *this* node's replica — the map
    /// the hot path consults to salt updates of split keys.
    pub fn split_pairs(&self) -> Vec<(u64, u64)> {
        self.split
            .as_ref()
            .map_or_else(Vec::new, |l| l.pairs_for(self.node))
    }

    /// This node's ledger copy (promotion clones it into a replacement).
    pub fn split_ledger(&self) -> Option<&SplitLedger> {
        self.split.as_ref()
    }

    /// Install a ledger copy wholesale — promotion/handoff: a replacement
    /// node must fold and label split keys exactly like its predecessor.
    pub fn set_split_ledger(&mut self, ledger: SplitLedger) {
        self.split = Some(ledger);
    }

    /// The live heat sketch, if telemetry is on (instrumented node or
    /// split-enabled node). The split driver merges these per tick.
    pub fn heat_snapshot(&self) -> Option<&HeatSketch> {
        self.heat.as_ref()
    }

    /// Drain every `(window, key)` of this node's primary partition whose
    /// window satisfies `ready` — the leader-side window trigger. Values
    /// are removed from the state (windows fire once), and their log
    /// entries are garbage collected.
    ///
    /// When a split ledger is active, the constituents of a split
    /// `(window, key)` — its per-replica sub-keys plus any canonical
    /// entry — are folded into one value with the descriptor's CRDT merge
    /// and emitted once under the canonical key: the reconciliation half
    /// of hot-key splitting. Sub-keys share the canonical key's window id
    /// and leader, so a ready window always drains all its constituents
    /// together.
    pub fn drain_triggered(
        &mut self,
        ready: impl Fn(u64) -> bool,
        mut emit: impl FnMut(TriggeredValue),
    ) -> usize {
        let primary = &mut self.fragments[self.node];
        let mut keys = Vec::new();
        primary.for_each_key(|key, _| {
            let (wid, _) = unpack_key(key);
            if ready(wid) {
                keys.push(key);
            }
        });
        if self.split.as_ref().is_some_and(|l| !l.is_empty()) {
            return self.drain_split(keys, emit);
        }
        for &key in &keys {
            let (window_id, k) = unpack_key(key);
            let data = if primary.descriptor().is_appended() {
                let mut elems = Vec::new();
                primary.for_each_element(key, |e| elems.push(e.to_vec()));
                TriggeredData::Elements(elems)
            } else {
                // Keys were collected from `for_each_key` just above with no
                // intervening mutation; a vanished key would indicate index
                // corruption, so skip it rather than panic.
                let Some(value) = primary.get(key) else {
                    debug_assert!(false, "key listed by for_each_key has a value");
                    continue;
                };
                TriggeredData::Fixed(value.to_vec())
            };
            primary.remove(key);
            emit(TriggeredValue {
                window_id,
                key: k,
                data,
            });
        }
        keys.len()
    }

    /// The split-aware drain: plain `(window, key)` entries emit exactly
    /// as in the unsplit path; the constituents of each split key — its
    /// per-replica sub-keys and any canonical entry — fold into one value
    /// via the descriptor's CRDT `merge`, emitted once under the
    /// canonical key.
    fn drain_split(
        &mut self,
        keys: Vec<StateKey>,
        mut emit: impl FnMut(TriggeredValue),
    ) -> usize {
        let appended = self.fragments[self.node].descriptor().is_appended();
        let mut plain: Vec<StateKey> = Vec::new();
        let mut groups: BTreeMap<StateKey, Vec<StateKey>> = BTreeMap::new();
        if let Some(ledger) = self.split.as_ref().filter(|_| !appended) {
            for &key in &keys {
                let (wid, gk) = unpack_key(key);
                if gk & SUB_KEY_TAG != 0 {
                    match ledger.canonical_of(gk) {
                        Some((canon, _)) => {
                            groups.entry(pack_key(wid, canon)).or_default().push(key);
                        }
                        // An orphan sub-key (ledger replaced mid-flight)
                        // still drains — as its own result, never lost.
                        None => plain.push(key),
                    }
                } else if ledger.is_split(gk) {
                    groups.entry(key).or_default().push(key);
                } else {
                    plain.push(key);
                }
            }
        } else {
            // Appended (holistic) state never splits — `split_activate`
            // gates on the descriptor — so drain everything plainly.
            plain = keys.clone();
        }
        let primary = &mut self.fragments[self.node];
        for &key in &plain {
            let (window_id, k) = unpack_key(key);
            let data = if appended {
                let mut elems = Vec::new();
                primary.for_each_element(key, |e| elems.push(e.to_vec()));
                TriggeredData::Elements(elems)
            } else {
                let Some(value) = primary.get(key) else {
                    debug_assert!(false, "key listed by for_each_key has a value");
                    continue;
                };
                TriggeredData::Fixed(value.to_vec())
            };
            primary.remove(key);
            emit(TriggeredValue {
                window_id,
                key: k,
                data,
            });
        }
        let desc = *primary.descriptor();
        for (canon_key, members) in &groups {
            let (window_id, canon_gk) = unpack_key(*canon_key);
            let mut acc = vec![0u8; desc.fixed_size()];
            (desc.init)(&mut acc);
            for &member in members {
                if let Some(value) = primary.get(member) {
                    (desc.merge)(&mut acc, value);
                }
                primary.remove(member);
            }
            emit(TriggeredValue {
                window_id,
                key: canon_gk,
                data: TriggeredData::Fixed(acc),
            });
        }
        keys.len()
    }

    /// Serialize this node's primary partition at the current epoch
    /// boundary (fault-tolerance extension; see [`crate::snapshot`]).
    pub fn snapshot_primary(&self, max_chunk: usize) -> Vec<Vec<u8>> {
        crate::snapshot::snapshot_chunks(
            &self.fragments[self.node],
            self.local_watermark,
            max_chunk,
        )
    }

    /// Replace this node's primary partition with a restored snapshot
    /// (crash recovery). The snapshot's watermark becomes the local one.
    pub fn restore_primary(&mut self, chunks: &[Vec<u8>]) {
        let desc = *self.fragments[self.node].descriptor();
        let (part, wm) = crate::snapshot::restore(self.node, desc, chunks);
        self.fragments[self.node] = part;
        self.note_progress(wm);
        self.vclock.update(self.node, wm);
    }

    // ------------------------------------------------------------------
    // Fault-tolerance surface (used by the recovery orchestrator in
    // `slash-core` and by the `slash-verify` recovery scenarios).
    // ------------------------------------------------------------------

    /// Build a node with fragments and vector clock but **no channels** —
    /// the replacement instance a promotion creates for a crashed
    /// executor's logical id. Channels are wired afterwards with
    /// [`SsbNode::replace_sender`] / [`SsbNode::replace_receiver`].
    pub fn detached(node: usize, desc: StateDescriptor, cfg: SsbConfig) -> SsbNode {
        SsbNode {
            node,
            cfg,
            fragments: (0..cfg.nodes).map(|p| Partition::new(p, desc)).collect(),
            senders: (0..cfg.nodes).map(|_| None).collect(),
            receivers: Vec::new(),
            vclock: VectorClock::new(cfg.nodes),
            bytes_since_epoch: 0,
            local_watermark: 0,
            obs: Obs::disabled(),
            heat: None,
            part_updates: vec![0; cfg.nodes],
            epoch_updates: 0,
            split: None,
        }
    }

    /// Epochs this node has closed so far (all remote fragments advance in
    /// lockstep; single-node clusters close no shippable epochs).
    pub fn epochs_closed(&self) -> u64 {
        self.fragments
            .iter()
            .enumerate()
            .filter(|(p, _)| *p != self.node)
            .map(|(_, f)| f.epoch())
            .max()
            .unwrap_or(0)
    }

    /// Enable epoch retention on every outbound sender (fault-tolerant
    /// runs call this before any epoch closes).
    pub fn set_retention(&mut self, retain: bool) {
        for s in self.senders.iter_mut().flatten() {
            s.set_retention(retain);
        }
    }

    /// Retained epochs queued toward `leader`, if a sender exists.
    pub fn retained_for(&self, leader: usize) -> Option<&[crate::coherence::RetainedEpoch]> {
        self.senders[leader].as_ref().map(|s| s.retained())
    }

    /// Prune retained epochs toward `leader` below `epoch` (covered by the
    /// leader's durable checkpoint).
    pub fn prune_retained(&mut self, leader: usize, epoch: u64) {
        if let Some(s) = self.senders[leader].as_mut() {
            s.prune_retained_below(epoch);
        }
    }

    /// Re-queue retained epochs `≥ from_epoch` toward `leader` (channel
    /// re-establishment). Returns epochs queued.
    pub fn requeue_to(&mut self, leader: usize, from_epoch: u64) -> usize {
        self.senders[leader]
            .as_mut()
            .map_or(0, |s| s.requeue_from(from_epoch))
    }

    /// Whether the outbound channel toward `leader` is in the error state.
    pub fn sender_error(&self, leader: usize) -> bool {
        self.senders[leader].as_ref().is_some_and(|s| s.is_error())
    }

    /// Whether the inbound channel from `helper` is in the error state.
    pub fn receiver_error(&self, helper: usize) -> bool {
        self.receivers
            .iter()
            .any(|r| r.helper() == helper && r.is_error())
    }

    /// Reset the outbound channel endpoint toward `leader` after a fault.
    pub fn reset_channel_to(&mut self, leader: usize) {
        if let Some(s) = self.senders[leader].as_mut() {
            s.reset_channel();
        }
    }

    /// Reset the inbound channel endpoint from `helper` after a fault,
    /// discarding uncommitted epochs (the helper replays them).
    pub fn reset_channel_from(&mut self, helper: usize) {
        if let Some(r) = self.receivers.iter_mut().find(|r| r.helper() == helper) {
            r.reset_channel();
        }
    }

    /// Committed-epoch horizon of the inbound channel from `helper`.
    pub fn receiver_next_epoch(&self, helper: usize) -> u64 {
        self.receivers
            .iter()
            .find(|r| r.helper() == helper)
            .map_or(0, |r| r.next_epoch())
    }

    /// Seed the committed-epoch horizon for the inbound channel from
    /// `helper` (recovery: the restored primary already contains these).
    pub fn seed_receiver(&mut self, helper: usize, next_epoch: u64) {
        if let Some(r) = self.receivers.iter_mut().find(|r| r.helper() == helper) {
            r.seed_next_epoch(next_epoch);
        }
    }

    /// Advance the durability gate for epochs from `helper`.
    pub fn set_durable_epochs(&mut self, helper: usize, durable_epochs: u64) {
        if let Some(r) = self.receivers.iter_mut().find(|r| r.helper() == helper) {
            r.set_durable_epochs(durable_epochs);
        }
    }

    /// Discard uncommitted (staged or gated) epochs from `helper`.
    pub fn abort_uncommitted_from(&mut self, helper: usize) {
        if let Some(r) = self.receivers.iter_mut().find(|r| r.helper() == helper) {
            r.abort_uncommitted();
        }
    }

    /// Install (or replace) the outbound delta sender toward `leader` —
    /// channel re-establishment toward a promoted replacement node.
    pub fn replace_sender(&mut self, leader: usize, sender: DeltaSender) {
        self.senders[leader] = Some(sender);
    }

    /// Install (or replace) the inbound delta receiver from `helper`.
    pub fn replace_receiver(&mut self, helper: usize, receiver: DeltaReceiver) {
        if let Some(slot) = self.receivers.iter_mut().find(|r| r.helper() == helper) {
            *slot = receiver;
        } else {
            self.receivers.push(receiver);
        }
    }

    /// Overwrite the vector clock from a checkpoint snapshot.
    pub fn restore_vclock(&mut self, entries: &[u64]) {
        for (i, &wm) in entries.iter().enumerate() {
            self.vclock.fault_force_set(i, wm);
        }
    }

    /// Fast-forward every remote fragment's epoch counter (promotion: the
    /// replacement must not reuse epoch ids its predecessor shipped).
    pub fn resume_fragments_at(&mut self, epoch: u64) {
        for (p, f) in self.fragments.iter_mut().enumerate() {
            if p != self.node {
                f.resume_at_epoch(epoch);
            }
        }
    }

    /// Deterministic digest of this node's primary partition content
    /// (keys, values, element multisets — not timing). Two runs that
    /// converge to the same state digest equal; used by the exactness
    /// checks of chaos runs and the golden determinism tests.
    pub fn state_digest(&self) -> u64 {
        let primary = &self.fragments[self.node];
        let mut keys = Vec::new();
        primary.for_each_key(|k, _| keys.push(k));
        keys.sort_unstable();
        let mut h: u64 = 0x51A5_4D16_E57A_7E00;
        let mut fold = |v: u64| {
            let mut z = h.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            h = z ^ (z >> 31);
        };
        let fold_bytes = |fold: &mut dyn FnMut(u64), b: &[u8]| {
            fold(b.len() as u64);
            for chunk in b.chunks(8) {
                let mut w = [0u8; 8];
                w[..chunk.len()].copy_from_slice(chunk);
                fold(u64::from_le_bytes(w));
            }
        };
        let appended = primary.descriptor().is_appended();
        for key in keys {
            fold(key as u64);
            fold((key >> 64) as u64);
            if appended {
                let mut elems: Vec<Vec<u8>> = Vec::new();
                primary.for_each_element(key, |e| elems.push(e.to_vec()));
                elems.sort();
                fold(elems.len() as u64);
                for e in &elems {
                    fold_bytes(&mut fold, e);
                }
            } else if let Some(v) = primary.get(key) {
                fold_bytes(&mut fold, v);
            }
        }
        h
    }

    /// Aggregate operation counters across fragments.
    pub fn stats(&self) -> crate::partition::PartitionStats {
        let mut total = crate::partition::PartitionStats::default();
        for f in &self.fragments {
            total.rmw_hits += f.stats.rmw_hits;
            total.rmw_inserts += f.stats.rmw_inserts;
            total.appends += f.stats.appends;
            total.merged_entries += f.stats.merged_entries;
            total.epochs += f.stats.epochs;
        }
        total
    }

    /// Live keys in this node's primary partition.
    pub fn primary_key_count(&self) -> usize {
        self.fragments[self.node].key_count()
    }

    /// Total resident state bytes on this node (all fragments).
    pub fn resident_bytes(&self) -> usize {
        self.fragments.iter().map(|f| f.resident_bytes()).sum()
    }

    /// Attach a trace handle to this node and every delta endpoint it
    /// owns: channel verb instants, epoch phase spans, and merge-latency
    /// histograms all flow into `obs`.
    pub fn instrument(&mut self, obs: Obs) {
        let node = self.node as u32;
        for (leader, sender) in self.senders.iter_mut().enumerate() {
            if let Some(s) = sender {
                s.instrument(obs.clone(), node, leader as u32);
            }
        }
        for r in self.receivers.iter_mut() {
            r.instrument(obs.clone(), node);
        }
        self.obs = obs;
        self.heat = Some(HeatSketch::new(HEAT_CAPACITY));
    }

    /// Emit the SSB-apply stage span for a worker batch: the worker owns
    /// the interval boundaries (its busy-window segmentation), the backend
    /// owns the emission — the apply stage belongs to the state layer.
    pub fn record_apply_span(&self, tid: u32, start: SimTime, end: SimTime, records: u64) {
        self.obs.span_open(Stage::SsbApply, self.node as u32, tid, start);
        self.obs.span_close(Stage::SsbApply, self.node as u32, tid, end, records);
    }

    /// Total payload bytes this node's delta senders pushed onto their
    /// links. The threaded executor sums this across nodes as its
    /// substitute for `Fabric::total_tx_bytes` (SPSC links bypass the
    /// simulated fabric entirely).
    pub fn tx_payload_bytes(&self) -> u64 {
        self.senders
            .iter()
            .flatten()
            .map(|s| s.channel_stats().payload_bytes)
            .sum()
    }

    /// Publish this node's channel statistics into the obs registry
    /// (buffer counters and residence-latency histograms per channel).
    pub fn publish_obs(&self) {
        for (leader, sender) in self.senders.iter().enumerate() {
            if let Some(s) = sender {
                let label = format!("chan={}->{}", self.node, leader);
                s.channel_stats().publish(&self.obs, &label);
                self.obs.gauge_set(
                    "queue_depth_peak",
                    &label,
                    s.peak_backlog() as f64,
                );
            }
        }
        for r in &self.receivers {
            let label = format!("chan={}->{}", r.helper(), self.node);
            r.channel_stats().publish(&self.obs, &label);
        }
        let node_label = format!("node{}", self.node);
        for (p, &n) in self.part_updates.iter().enumerate() {
            if n > 0 {
                self.obs.counter_add(
                    "partition_updates",
                    &format!("{node_label} part={p}"),
                    n,
                );
            }
        }
        if let Some(h) = self.heat.as_ref() {
            if !h.is_empty() {
                self.obs.heat_merge("key_heat", &node_label, h);
            }
        }
    }
}

/// Build the SSB for a cluster: one [`SsbNode`] per executor and the
/// `n × (n-1)` delta channels between them (the paper's `n²` channel setup
/// minus the self-loops, which need no wire).
pub fn build_cluster(
    fabric: &Fabric,
    nodes: &[NodeId],
    desc: StateDescriptor,
    cfg: SsbConfig,
) -> Vec<SsbNode> {
    build_cluster_obs(fabric, nodes, desc, cfg, Obs::disabled())
}

/// [`build_cluster`] with tracing: every node and delta endpoint is
/// instrumented against `obs` before any traffic flows.
pub fn build_cluster_obs(
    fabric: &Fabric,
    nodes: &[NodeId],
    desc: StateDescriptor,
    cfg: SsbConfig,
    obs: Obs,
) -> Vec<SsbNode> {
    let n = nodes.len();
    assert_eq!(n, cfg.nodes, "config must match the node list");
    let mut ssb: Vec<SsbNode> = (0..n)
        .map(|i| SsbNode {
            node: i,
            cfg,
            fragments: (0..n).map(|p| Partition::new(p, desc)).collect(),
            senders: (0..n).map(|_| None).collect(),
            receivers: Vec::new(),
            vclock: VectorClock::new(n),
            bytes_since_epoch: 0,
            local_watermark: 0,
            obs: Obs::disabled(),
            heat: None,
            part_updates: vec![0; n],
            epoch_updates: 0,
            split: None,
        })
        .collect();

    for helper in 0..n {
        for leader in 0..n {
            if helper == leader {
                continue;
            }
            let (tx, rx) = create_channel(fabric, nodes[helper], nodes[leader], cfg.channel);
            ssb[helper].senders[leader] = Some(DeltaSender::new(tx));
            ssb[leader].receivers.push(DeltaReceiver::new(rx, helper));
        }
    }
    if obs.is_enabled() {
        for node in ssb.iter_mut() {
            node.instrument(obs.clone());
        }
    }
    ssb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crdts::CounterCrdt;
    use crate::hash::pack_key;
    use slash_rdma::FabricConfig;

    fn cluster(n: usize) -> (Sim, Vec<SsbNode>) {
        let sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(n);
        let cfg = SsbConfig {
            nodes: n,
            epoch_bytes: u64::MAX, // manual epochs in tests
            channel: ChannelConfig {
                credits: 8,
                buffer_size: 4096,
                credit_batch: 1,
            },
        };
        let ssb = build_cluster(&fabric, &nodes, CounterCrdt::descriptor(), cfg);
        (sim, ssb)
    }

    /// Pump all nodes until quiescent.
    fn settle(sim: &mut Sim, ssb: &mut [SsbNode]) {
        for _ in 0..10_000 {
            let mut progress = 0;
            for node in ssb.iter_mut() {
                let (s, m) = node.pump(sim).unwrap();
                progress += s + m;
            }
            sim.run();
            if progress == 0 && ssb.iter().all(|n| n.flushed()) {
                // One extra settle round for late deliveries.
                let mut extra = 0;
                for node in ssb.iter_mut() {
                    let (s, m) = node.pump(sim).unwrap();
                    extra += s + m;
                }
                if extra == 0 {
                    return;
                }
            }
        }
        panic!("cluster did not settle");
    }

    #[test]
    fn concurrent_updates_converge_to_sequential_result() {
        let (mut sim, mut ssb) = cluster(3);
        // Every node updates every key (keys are NOT pre-partitioned —
        // the whole point of omitting re-partitioning).
        for node in ssb.iter_mut() {
            for g in 0..20u64 {
                node.rmw(pack_key(1, g), |v| CounterCrdt::add(v, 1 + g));
            }
            node.note_progress(100);
        }
        for node in ssb.iter_mut() {
            node.close_epoch(&mut sim).unwrap();
        }
        settle(&mut sim, &mut ssb);

        // Every key must live on exactly one leader with the full count.
        for g in 0..20u64 {
            let key = pack_key(1, g);
            let leader = partition_of(key, 3);
            let v = ssb[leader].fragments[leader]
                .get(key)
                .map(CounterCrdt::get);
            assert_eq!(v, Some(3 * (1 + g)), "key {g} on leader {leader}");
            // And on no other node's primary.
            for (other, node) in ssb.iter().enumerate() {
                if other != leader {
                    assert_eq!(node.fragments[other].get(key), None);
                }
            }
        }
    }

    #[test]
    fn rmw_batch_routes_and_converges_like_per_record_rmw() {
        let run = |combined: bool| {
            let (mut sim, mut ssb) = cluster(3);
            for node in ssb.iter_mut() {
                if combined {
                    let mut comb = WriteCombiner::new(CounterCrdt::descriptor(), 64);
                    for rec in 0..200u64 {
                        let key = pack_key(1, rec % 20);
                        assert!(comb.fold(key, |v| CounterCrdt::add(v, 1)));
                    }
                    assert_eq!(node.rmw_batch(&mut comb), 20);
                    assert!(comb.is_empty());
                } else {
                    for rec in 0..200u64 {
                        node.rmw(pack_key(1, rec % 20), |v| CounterCrdt::add(v, 1));
                    }
                }
                node.note_progress(100);
            }
            for node in ssb.iter_mut() {
                node.close_epoch(&mut sim).unwrap();
            }
            settle(&mut sim, &mut ssb);
            ssb.iter().map(|n| n.state_digest()).collect::<Vec<u64>>()
        };
        assert_eq!(
            run(true),
            run(false),
            "combined and per-record runs must converge bit-identically"
        );
    }

    #[test]
    fn append_batch_matches_per_record_appends_across_partitions() {
        use crate::descriptor::appended_descriptor;
        let build = || {
            let sim = Sim::new();
            let fabric = Fabric::new(FabricConfig::default());
            let nodes = fabric.add_nodes(2);
            let cfg = SsbConfig {
                nodes: 2,
                epoch_bytes: u64::MAX,
                channel: ChannelConfig {
                    credits: 8,
                    buffer_size: 4096,
                    credit_batch: 1,
                },
            };
            (sim, build_cluster(&fabric, &nodes, appended_descriptor(), cfg))
        };
        let stride = 3usize;
        let keys: Vec<StateKey> = (0..40u64).map(|i| pack_key(1, i % 7)).collect();
        let elems: Vec<u8> = (0..keys.len() * stride).map(|b| b as u8).collect();

        let (_sim_a, mut a) = build();
        a[0].append_batch(&keys, &elems, stride);
        let (_sim_b, mut b) = build();
        for (i, &k) in keys.iter().enumerate() {
            b[0].append(k, &elems[i * stride..(i + 1) * stride]);
        }
        // Every fragment (primary and remote) must hold byte-identical
        // chains, and the open-epoch accounting must agree.
        for p in 0..2 {
            for &key in &keys {
                let mut ea = Vec::new();
                let mut eb = Vec::new();
                a[0].fragments[p].for_each_element(key, |e| ea.push(e.to_vec()));
                b[0].fragments[p].for_each_element(key, |e| eb.push(e.to_vec()));
                assert_eq!(ea, eb, "fragment {p} chain for key {key} diverged");
            }
            assert_eq!(
                a[0].fragments[p].dirty_bytes(),
                b[0].fragments[p].dirty_bytes()
            );
        }
        assert_eq!(a[0].bytes_since_epoch, b[0].bytes_since_epoch);
    }

    #[test]
    fn instrumented_node_tracks_heat_and_partition_updates() {
        let (mut sim, mut ssb) = cluster(3);
        let obs = Obs::enabled(256);
        for node in ssb.iter_mut() {
            node.instrument(obs.clone());
        }
        // Skewed single-record stream on node 0: key 7 is hot.
        for rec in 0..100u64 {
            let g = if rec % 4 == 0 { rec % 5 } else { 7 };
            ssb[0].rmw(pack_key(1, g), |v| CounterCrdt::add(v, 1));
        }
        // Batched updates fold into the combiner first; their per-key
        // weights must survive the flush into the sketch.
        let mut comb = WriteCombiner::new(CounterCrdt::descriptor(), 64);
        for _ in 0..50u64 {
            assert!(comb.fold(pack_key(1, 7), |v| CounterCrdt::add(v, 1)));
        }
        ssb[0].rmw_batch(&mut comb);
        let top = ssb[0].heat.as_ref().unwrap().top(1);
        assert_eq!(top[0].key, 7);
        assert_eq!(top[0].count, 75 + 50);
        assert_eq!(top[0].err, 0, "well under capacity: counts are exact");
        assert_eq!(
            ssb[0].part_updates.iter().sum::<u64>(),
            150,
            "every update lands in exactly one partition bucket"
        );
        // Epoch close publishes and resets the per-epoch gauge.
        assert_eq!(ssb[0].epoch_updates, 150);
        ssb[0].note_progress(10);
        ssb[0].close_epoch(&mut sim).unwrap();
        assert_eq!(ssb[0].epoch_updates, 0);
        ssb[0].publish_obs();
        let hot = obs.heat_top("key_heat", "node0", 1);
        assert_eq!(hot[0].key, 7);
        assert_eq!(hot[0].count, 125);
    }

    #[test]
    fn uninstrumented_node_keeps_no_telemetry() {
        let (_sim, mut ssb) = cluster(2);
        ssb[0].rmw(pack_key(1, 3), |v| CounterCrdt::add(v, 1));
        assert!(ssb[0].heat.is_none());
        assert_eq!(ssb[0].part_updates.iter().sum::<u64>(), 0);
        assert_eq!(ssb[0].epoch_updates, 0);
    }

    #[test]
    fn vector_clock_advances_only_after_merge() {
        let (mut sim, mut ssb) = cluster(2);
        ssb[0].rmw(pack_key(1, 1), |v| CounterCrdt::add(v, 1));
        ssb[0].note_progress(500);
        assert_eq!(ssb[1].vclock().get(0), 0);
        ssb[0].close_epoch(&mut sim).unwrap();
        settle(&mut sim, &mut ssb);
        assert_eq!(ssb[1].vclock().get(0), 500);
        assert_eq!(ssb[0].vclock().get(0), 500, "own slot advances locally");
        assert_eq!(ssb[0].vclock().get(1), 0, "node 1 sent nothing yet");
    }

    #[test]
    fn drain_triggered_fires_ready_windows_once() {
        let (mut sim, mut ssb) = cluster(2);
        // Two windows; only window 1 becomes ready.
        for node in ssb.iter_mut() {
            node.rmw(pack_key(1, 7), |v| CounterCrdt::add(v, 5));
            node.rmw(pack_key(2, 7), |v| CounterCrdt::add(v, 9));
            node.note_progress(1000);
        }
        for node in ssb.iter_mut() {
            node.close_epoch(&mut sim).unwrap();
        }
        settle(&mut sim, &mut ssb);

        let mut fired = Vec::new();
        for node in ssb.iter_mut() {
            node.drain_triggered(
                |wid| wid == 1,
                |tv| fired.push((tv.window_id, tv.key, tv.data.clone())),
            );
        }
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 1);
        assert_eq!(fired[0].1, 7);
        match &fired[0].2 {
            TriggeredData::Fixed(v) => assert_eq!(CounterCrdt::get(v), 10),
            other => panic!("unexpected {other:?}"),
        }
        // Firing again yields nothing (exactly-once trigger).
        let mut again = 0;
        for node in ssb.iter_mut() {
            again += node.drain_triggered(|wid| wid == 1, |_| {});
        }
        assert_eq!(again, 0);
        // Window 2 still intact.
        let key2 = pack_key(2, 7);
        let leader2 = partition_of(key2, 2);
        assert_eq!(
            ssb[leader2].fragments[leader2].get(key2).map(CounterCrdt::get),
            Some(18)
        );
    }

    /// Split/unsplit runs of the same update stream must trigger
    /// identical results: the fold over salted sub-keys is the CRDT merge
    /// the epoch path would have performed anyway.
    #[test]
    fn split_fold_matches_unsplit_drain() {
        let hot = 7u64;
        let run = |split: bool| {
            let (mut sim, mut ssb) = cluster(3);
            if split {
                for node in ssb.iter_mut() {
                    node.split_enable();
                    assert!(node.split_activate(hot));
                }
            }
            for (i, node) in ssb.iter_mut().enumerate() {
                for rec in 0..50u64 {
                    let gk = if rec % 3 == 0 { rec % 5 } else { hot };
                    // The hot path salts split keys per replica; model it.
                    let salted = match gk == hot && split {
                        true => ssb_sub(node, hot, i),
                        false => gk,
                    };
                    node.rmw(pack_key(1, salted), |v| CounterCrdt::add(v, 1 + rec));
                }
                node.note_progress(1000);
            }
            for node in ssb.iter_mut() {
                node.close_epoch(&mut sim).unwrap();
            }
            settle(&mut sim, &mut ssb);
            let mut fired = Vec::new();
            for node in ssb.iter_mut() {
                node.drain_triggered(
                    |wid| wid == 1,
                    |tv| {
                        let TriggeredData::Fixed(v) = &tv.data else {
                            panic!("counter state is fixed");
                        };
                        fired.push((tv.window_id, tv.key, CounterCrdt::get(v)));
                    },
                );
            }
            fired.sort_unstable();
            fired
        };
        fn ssb_sub(node: &SsbNode, gk: u64, replica: usize) -> u64 {
            node.split_ledger()
                .and_then(|l| l.sub_for(gk, replica))
                .unwrap()
        }
        let split_run = run(true);
        let plain_run = run(false);
        assert_eq!(split_run, plain_run, "fold must be exact");
        assert!(
            plain_run.iter().any(|&(_, k, _)| k == hot),
            "hot key present under its canonical label"
        );
        assert!(
            split_run.iter().all(|&(_, k, _)| k & SUB_KEY_TAG == 0),
            "no sub-key ever escapes to a result"
        );
    }

    #[test]
    fn split_activate_gates_on_descriptor_and_ledger() {
        use crate::descriptor::appended_descriptor;
        let (_sim, mut ssb) = cluster(2);
        assert!(!ssb[0].split_activate(3), "no ledger installed yet");
        ssb[0].split_enable();
        assert_eq!(ssb[0].split_version(), 0);
        assert!(ssb[0].split_activate(3));
        assert_eq!(ssb[0].split_version(), 1);
        assert_eq!(ssb[0].split_keys(), vec![3]);
        assert_eq!(ssb[0].split_pairs().len(), 1);
        assert!(ssb[0].heat_snapshot().is_some(), "enable turns heat on");

        // Holistic state refuses to split even with a ledger present.
        let mut holo = SsbNode::detached(
            0,
            appended_descriptor(),
            SsbConfig {
                nodes: 2,
                epoch_bytes: u64::MAX,
                channel: ChannelConfig {
                    credits: 8,
                    buffer_size: 4096,
                    credit_batch: 1,
                },
            },
        );
        holo.split_enable();
        assert!(!holo.split_activate(3), "appended state is not splittable");
    }

    /// A replacement node that inherits the ledger folds exactly like the
    /// node it replaced — the promotion-path contract.
    #[test]
    fn ledger_copy_preserves_fold_on_replacement() {
        let (_sim, mut ssb) = cluster(2);
        ssb[0].split_enable();
        assert!(ssb[0].split_activate(9));
        let ledger = ssb[0].split_ledger().unwrap().clone();

        // Build the replacement as the hot key's leader so the fold runs.
        let leader = partition_of(pack_key(1, 9), 2);
        let mut replacement = SsbNode::detached(
            leader,
            CounterCrdt::descriptor(),
            SsbConfig {
                nodes: 2,
                epoch_bytes: u64::MAX,
                channel: ChannelConfig {
                    credits: 8,
                    buffer_size: 4096,
                    credit_batch: 1,
                },
            },
        );
        replacement.set_split_ledger(ledger.clone());
        // Seed sub-key entries directly (as a delta replay would) plus a
        // canonical entry, and check the fold lands under the canonical.
        for r in 0..2usize {
            let sub = ledger.sub_for(9, r).unwrap();
            replacement.rmw(pack_key(1, sub), |v| CounterCrdt::add(v, 10));
        }
        replacement.rmw(pack_key(1, 9), |v| CounterCrdt::add(v, 5));
        let mut fired = Vec::new();
        replacement.drain_triggered(
            |_| true,
            |tv| {
                let TriggeredData::Fixed(v) = &tv.data else {
                    panic!("fixed");
                };
                fired.push((tv.key, CounterCrdt::get(v)));
            },
        );
        assert_eq!(fired, vec![(9, 25)]);
    }

    /// A key reported hot then split stops dominating the cluster-merged
    /// heat sketch: after activation every replica's updates land under
    /// its own salted sub-key, so the canonical key's count freezes while
    /// total weight keeps growing, and each sub-key carries only a 1/n
    /// share of the hot mass. Counts stay exact (err = 0) throughout
    /// because the live key set fits the sketch capacity.
    #[test]
    fn split_key_stops_dominating_merged_heat_sketch() {
        const NODES: usize = 4;
        const HOT: u64 = 77;
        const BACKGROUND: u64 = 40;
        const PER_NODE: u64 = 2_000;
        let (_sim, mut ssb) = cluster(NODES);
        for node in ssb.iter_mut() {
            node.split_enable();
        }
        // Phase 1 (unsplit): every other record hits the hot key.
        let drive = |node: &mut SsbNode, i: usize, salt: Option<u64>| {
            for rec in 0..PER_NODE {
                let g = if rec % 2 == 0 {
                    salt.unwrap_or(HOT)
                } else {
                    (rec / 2 + (i as u64) * 13) % BACKGROUND
                };
                node.rmw(pack_key(1, g), |v| CounterCrdt::add(v, 1));
            }
        };
        for (i, node) in ssb.iter_mut().enumerate() {
            drive(node, i, None);
        }
        let merged = |ssb: &[SsbNode]| {
            let mut m = HeatSketch::new(HEAT_CAPACITY);
            for node in ssb {
                m.merge(node.heat_snapshot().expect("split_enable turns heat on"));
            }
            m
        };
        let pre = merged(&ssb);
        let hot_pre = pre.top(1)[0];
        assert_eq!(hot_pre.key, HOT, "the hot key dominates before the split");
        assert_eq!(hot_pre.err, 0);
        assert!(
            hot_pre.count * 2 >= pre.total(),
            "hot share before split: {}/{}",
            hot_pre.count,
            pre.total()
        );

        // Phase 2 (split): same stream, each replica salting the hot key
        // with its own sub-key — the hot path's routing.
        for node in ssb.iter_mut() {
            assert!(node.split_activate(HOT));
        }
        for (i, node) in ssb.iter_mut().enumerate() {
            let sub = node.split_ledger().unwrap().sub_for(HOT, i).unwrap();
            drive(node, i, Some(sub));
        }
        let post = merged(&ssb);
        assert_eq!(post.total(), 2 * pre.total());
        let canon = post
            .top(HEAT_CAPACITY)
            .into_iter()
            .find(|e| e.key == HOT)
            .expect("canonical entry survives");
        assert_eq!(
            canon.count, hot_pre.count,
            "the canonical key's count freezes once updates salt away"
        );
        assert!(
            canon.count * 3 <= post.total(),
            "the canonical key no longer dominates: {}/{}",
            canon.count,
            post.total()
        );
        // Each sub-key carries exactly its replica's hot share, exactly.
        let ledger = ssb[0].split_ledger().unwrap().clone();
        for r in 0..NODES {
            let sub = ledger.sub_for(HOT, r).unwrap();
            let e = post
                .top(HEAT_CAPACITY)
                .into_iter()
                .find(|e| e.key == sub)
                .expect("every sub-key is monitored");
            assert_eq!(e.count, PER_NODE / 2, "replica {r} hot share");
            assert_eq!(e.err, 0, "under capacity: sub-key counts are exact");
        }
    }

    #[test]
    fn leader_crash_recovery_from_snapshot() {
        let (mut sim, mut ssb) = cluster(2);
        // Phase 1: both nodes update; epoch; settle.
        for node in ssb.iter_mut() {
            for g in 0..10u64 {
                node.rmw(pack_key(1, g), |v| CounterCrdt::add(v, 3));
            }
            node.note_progress(50);
            node.close_epoch(&mut sim).unwrap();
        }
        settle(&mut sim, &mut ssb);

        // Take a snapshot of node 0's primary, wipe it, restore.
        let chunks = ssb[0].snapshot_primary(512);
        let before: Vec<_> = {
            let mut keys = Vec::new();
            ssb[0].fragments[0].for_each_key(|k, _| keys.push(k));
            keys.sort();
            keys
        };
        ssb[0].restore_primary(&chunks);
        let after: Vec<_> = {
            let mut keys = Vec::new();
            ssb[0].fragments[0].for_each_key(|k, _| keys.push(k));
            keys.sort();
            keys
        };
        assert_eq!(before, after, "restored key set identical");

        // Phase 2: more updates merge into the restored leader correctly.
        for node in ssb.iter_mut() {
            for g in 0..10u64 {
                node.rmw(pack_key(1, g), |v| CounterCrdt::add(v, 1));
            }
            node.note_progress(100);
            node.close_epoch(&mut sim).unwrap();
        }
        settle(&mut sim, &mut ssb);
        for g in 0..10u64 {
            let key = pack_key(1, g);
            let leader = partition_of(key, 2);
            assert_eq!(
                ssb[leader].local_get(key).map(CounterCrdt::get),
                Some(2 * 3 + 2),
                "key {g}"
            );
        }
    }

    #[test]
    fn byte_threshold_closes_epochs_automatically() {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let nodes = fabric.add_nodes(2);
        let cfg = SsbConfig {
            nodes: 2,
            epoch_bytes: 512,
            channel: ChannelConfig {
                credits: 8,
                buffer_size: 4096,
                credit_batch: 1,
            },
        };
        let mut ssb = build_cluster(&fabric, &nodes, CounterCrdt::descriptor(), cfg);
        let mut closed = 0;
        for g in 0..100u64 {
            ssb[0].rmw(pack_key(1, g), |v| CounterCrdt::add(v, 1));
            if ssb[0].maybe_close_epoch(&mut sim).unwrap().is_some() {
                closed += 1;
            }
        }
        assert!(closed >= 5, "only {closed} epochs closed");
    }
}
