//! Property P2 (paper §5.1): a distributed computation over a stream must
//! produce the same output a sequential computation would — end to end,
//! for every engine and every workload family.
//!
//! The oracle is a plain sequential fold over the same generated
//! partitions; engines must match it exactly (aggregations) or in pair
//! counts (joins).

use std::collections::HashMap;

use slash::baselines::partitioned::{run_partitioned, PartitionedConfig, Transport};
use slash::core::{QueryPlan, RunConfig, SinkResult, SlashCluster};
use slash::workloads::{cm, nb7, nb8, ysb, GenConfig, Workload};

/// Sequential oracle: fold every record of every partition.
fn oracle(w: &Workload) -> HashMap<(u64, u64), f64> {
    let mut out: HashMap<(u64, u64), Vec<u8>> = HashMap::new();
    let (input, window, agg) = match &w.plan {
        QueryPlan::Aggregate { input, window, agg } => (input, *window, *agg),
        _ => panic!("oracle only handles aggregations"),
    };
    let schema = input.schema;
    let desc = agg.descriptor();
    for part in &w.partitions {
        schema.for_each(part, |rec| {
            if !input.keep(rec) {
                return;
            }
            let wid = window.assign(schema.ts(rec));
            let key = schema.key(rec);
            let value = out.entry((wid, key)).or_insert_with(|| {
                let mut v = vec![0u8; desc.fixed_size()];
                (desc.init)(&mut v);
                v
            });
            agg.update(&schema, rec, value);
        });
    }
    out.into_iter()
        .map(|(k, v)| (k, agg.render(&v)))
        .collect()
}

fn results_map(results: &[SinkResult]) -> HashMap<(u64, u64), f64> {
    let mut out = HashMap::new();
    for r in results {
        if let SinkResult::Agg {
            window_id,
            key,
            value,
        } = r
        {
            let prev = out.insert((*window_id, *key), *value);
            assert!(prev.is_none(), "duplicate trigger for {window_id}/{key}");
        }
    }
    out
}

fn assert_equal(expected: &HashMap<(u64, u64), f64>, got: &HashMap<(u64, u64), f64>, sut: &str) {
    assert_eq!(
        expected.len(),
        got.len(),
        "{sut}: {} expected groups, {} emitted",
        expected.len(),
        got.len()
    );
    for (k, want) in expected {
        let have = got.get(k).unwrap_or_else(|| panic!("{sut}: missing {k:?}"));
        assert!(
            (want - have).abs() < 1e-9 * want.abs().max(1.0),
            "{sut}: {k:?} expected {want}, got {have}"
        );
    }
}

fn slash_results(w: Workload, nodes: usize, workers: usize) -> HashMap<(u64, u64), f64> {
    assert_eq!(w.partitions.len(), nodes * workers);
    let mut cfg = RunConfig::new(nodes, workers);
    cfg.collect_results = true;
    cfg.epoch_bytes = 64 * 1024; // frequent epochs stress the protocol
    let report = SlashCluster::run(w.plan, w.partitions, cfg);
    results_map(&report.results)
}

fn partitioned_results(
    w: Workload,
    nodes: usize,
    workers: usize,
    transport: Transport,
    rf: f64,
) -> HashMap<(u64, u64), f64> {
    let mut cfg = PartitionedConfig::new(nodes, workers, transport);
    cfg.runtime_factor = rf;
    cfg.collect_results = true;
    let report = run_partitioned(w.plan, w.partitions, cfg);
    results_map(&report.results)
}

#[test]
fn ysb_all_engines_match_the_sequential_oracle() {
    // Same partitions for everyone: 4 source streams.
    let w = ysb(&GenConfig::new(4, 5_000));
    let expected = oracle(&w);
    assert!(!expected.is_empty());

    let slash = slash_results(ysb(&GenConfig::new(4, 5_000)), 2, 2);
    assert_equal(&expected, &slash, "slash");

    // UpPar with 2 nodes × 4 workers has 2 senders/node = 4 sources.
    let uppar = partitioned_results(
        ysb(&GenConfig::new(4, 5_000)),
        2,
        4,
        Transport::Rdma,
        1.0,
    );
    assert_equal(&expected, &uppar, "uppar");

    let flink = partitioned_results(
        ysb(&GenConfig::new(4, 5_000)),
        2,
        4,
        Transport::Socket,
        3.5,
    );
    assert_equal(&expected, &flink, "flink");
}

#[test]
fn nb7_max_aggregation_matches_oracle_under_pareto_skew() {
    let w = nb7(&GenConfig::new(4, 4_000));
    let expected = oracle(&w);
    let slash = slash_results(nb7(&GenConfig::new(4, 4_000)), 2, 2);
    assert_equal(&expected, &slash, "slash");
    let uppar = partitioned_results(
        nb7(&GenConfig::new(4, 4_000)),
        2,
        4,
        Transport::Rdma,
        1.0,
    );
    assert_equal(&expected, &uppar, "uppar");
}

#[test]
fn cm_mean_aggregation_matches_oracle() {
    let w = cm(&GenConfig::new(6, 3_000));
    let expected = oracle(&w);
    let slash = slash_results(cm(&GenConfig::new(6, 3_000)), 3, 2);
    assert_equal(&expected, &slash, "slash");
}

/// Join pair counts per (window, key) must agree between engines and with
/// a sequential oracle.
#[test]
fn nb8_join_pairs_match_between_engines_and_oracle() {
    let gen = || nb8(&GenConfig::new(4, 2_500));
    let w = gen();
    let (input, window, side_off) = match &w.plan {
        QueryPlan::Join {
            input,
            window,
            side_off,
            ..
        } => (input.clone(), *window, *side_off),
        _ => unreachable!(),
    };
    let schema = input.schema;
    let mut left: HashMap<(u64, u64), u64> = HashMap::new();
    let mut right: HashMap<(u64, u64), u64> = HashMap::new();
    for part in &w.partitions {
        schema.for_each(part, |rec| {
            let k = (window.assign(schema.ts(rec)), schema.key(rec));
            if schema.field_u64(rec, side_off) == 0 {
                *left.entry(k).or_default() += 1;
            } else {
                *right.entry(k).or_default() += 1;
            }
        });
    }
    let expected: HashMap<(u64, u64), u64> = left
        .iter()
        .filter_map(|(k, l)| right.get(k).map(|r| (*k, l * r)))
        .filter(|(_, p)| *p > 0)
        .collect();
    let expected_total: u64 = expected.values().sum();

    let mut cfg = RunConfig::new(2, 2);
    cfg.collect_results = true;
    let slash = SlashCluster::run(w.plan, w.partitions, cfg);
    assert_eq!(slash.total_pairs, expected_total, "slash pair total");

    let w = gen();
    let mut cfg = PartitionedConfig::new(2, 4, Transport::Rdma);
    cfg.collect_results = true;
    let uppar = run_partitioned(w.plan, w.partitions, cfg);
    assert_eq!(uppar.total_pairs, expected_total, "uppar pair total");

    // Per-group equality for Slash.
    for r in &slash.results {
        if let SinkResult::Join {
            window_id,
            key,
            pairs,
        } = r
        {
            if *pairs == 0 {
                continue;
            }
            assert_eq!(
                expected.get(&(*window_id, *key)),
                Some(pairs),
                "group ({window_id},{key})"
            );
        }
    }
}

/// NB11's session join must produce identical session-split pair counts
/// on Slash and UpPar (cross-engine P2 for sessions).
#[test]
fn nb11_session_join_matches_between_engines() {
    use slash::workloads::nb11;
    let gen = || nb11(&GenConfig::new(4, 2_000));

    let w = gen();
    let mut cfg = RunConfig::new(2, 2);
    cfg.collect_results = true;
    let slash = SlashCluster::run(w.plan, w.partitions, cfg);

    let w = gen();
    let mut cfg = PartitionedConfig::new(2, 4, Transport::Rdma);
    cfg.collect_results = true;
    let uppar = run_partitioned(w.plan, w.partitions, cfg);

    assert!(slash.total_pairs > 0, "sessions must produce matches");
    assert_eq!(
        slash.total_pairs, uppar.total_pairs,
        "session pair totals must agree across engines"
    );

    // Per-group comparison.
    let collect = |results: &[SinkResult]| -> HashMap<(u64, u64), u64> {
        results
            .iter()
            .filter_map(|r| match r {
                SinkResult::Join {
                    window_id,
                    key,
                    pairs,
                } if *pairs > 0 => Some(((*window_id, *key), *pairs)),
                _ => None,
            })
            .collect()
    };
    assert_eq!(collect(&slash.results), collect(&uppar.results));
}
