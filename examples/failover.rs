//! Leader failover on the Yahoo! Streaming Benchmark: crash a node
//! mid-run and watch the cluster recover *exactly*.
//!
//! Two fault-tolerant runs of the same seed: one healthy, one where node 1
//! — leader of its primary partition, helper for the others — dies at
//! t = 200 µs. The driver detects the missed epoch tokens, promotes the
//! orphaned partition onto a surviving node from the durable epoch-aligned
//! checkpoint, replays the retained deltas from the surviving helpers, and
//! finishes the query. The example prints the time-to-recover and proves
//! the final window counts match the no-fault run bit-exactly (CRDT merges
//! plus epoch-id dedup make the replay idempotent).
//!
//! The faulted run is fully traced: the Chrome trace-event JSON (load at
//! <https://ui.perfetto.dev>) shows the outage window — fault instants and
//! the recovery span ride the `fault` category — and is written to
//! `results/failover_trace.json` (override with `SLASH_TRACE_OUT=path`).
//! Same seed, same plan, same bytes: the trace is deterministic.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use slash::chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash::core::{
    RecoveryAction, RecoveryReport, RunConfig, RunReport, SlashCluster,
};
use slash::desim::SimTime;
use slash::obs::Obs;
use slash::workloads::{ysb, GenConfig};

const NODES: usize = 3;
const VICTIM: usize = 1;

fn run(plan: &FaultPlan, obs: Obs) -> (RunReport, RecoveryReport) {
    let mut cfg = RunConfig::new(NODES, 1);
    cfg.collect_results = true;
    cfg.epoch_bytes = 16 * 1024;
    let w = ysb(&GenConfig::new(NODES, 25_000));
    let chaos = ChaosConfig {
        plan: plan.clone(),
        ft: FtConfig {
            detect_timeout: SimTime::from_micros(300),
            ckpt_max_chunk: 16 * 1024,
            ckpt_copies: 2,
        },
        pre_split: Vec::new(),
    };
    SlashCluster::run_chaos(w.plan, w.partitions, cfg, &chaos, obs)
}

fn main() {
    println!(
        "YSB failover: {NODES} nodes, fault-tolerant (epoch checkpoints to a \
         buddy, durability-gated commits), node {VICTIM} crashes at 200 us\n"
    );

    // --- The no-fault reference run (same seed, same FT overheads). ---
    let (base, base_rec) = run(&FaultPlan::new(), Obs::disabled());
    println!(
        "no-fault run : {} records, {} windows, completion {:7.1} us, {} durable ckpts",
        base.records,
        base.results.len(),
        base.completion_time.as_nanos() as f64 / 1e3,
        base_rec.checkpoints_durable
    );

    // --- The failover run: crash the leader mid-stream, traced. ---
    let crash_at = SimTime::from_micros(200);
    let plan = FaultPlan::new().crash(crash_at, VICTIM);
    let obs = Obs::enabled(65_536);
    let (run_rep, rec) = run(&plan, obs.clone());
    println!(
        "failover run : {} records, {} windows, completion {:7.1} us, {} durable ckpts",
        run_rep.records,
        run_rep.results.len(),
        run_rep.completion_time.as_nanos() as f64 / 1e3,
        rec.checkpoints_durable
    );

    let promotion = rec
        .events
        .iter()
        .find(|e| matches!(e.action, RecoveryAction::Promoted { .. }))
        .expect("the crash must be detected and repaired by promotion");
    let host = match promotion.action {
        RecoveryAction::Promoted { host, .. } => host,
        RecoveryAction::ChannelsReset { .. } => unreachable!(),
    };
    println!(
        "\nrecovery     : node {} crashed @{:.1} us, detected @{:.1} us, \
         partition promoted onto node {host}, repaired @{:.1} us",
        promotion.node,
        promotion.injected_at.as_nanos() as f64 / 1e3,
        promotion.detected_at.as_nanos() as f64 / 1e3,
        promotion.recovered_at.as_nanos() as f64 / 1e3,
    );
    println!(
        "time-to-recover: {:.1} us (detect {:.1} us + repair {:.1} us)",
        promotion.time_to_recover().as_nanos() as f64 / 1e3,
        (promotion.detected_at - promotion.injected_at).as_nanos() as f64 / 1e3,
        (promotion.recovered_at - promotion.detected_at).as_nanos() as f64 / 1e3,
    );

    // --- Exactness: not best-effort — bit-exact. ---
    assert_eq!(run_rep.records, base.records, "records lost or duplicated");
    assert_eq!(
        run_rep.results.len(),
        base.results.len(),
        "window count diverged"
    );
    assert_eq!(
        rec.results_digest, base_rec.results_digest,
        "window results diverged from the no-fault run"
    );
    assert_eq!(
        rec.state_digests, base_rec.state_digests,
        "final primary state diverged from the no-fault run"
    );
    println!(
        "\nexactness    : {} window counts and {} per-node state digests match \
         the no-fault run bit-exactly (records lost: 0)",
        run_rep.results.len(),
        rec.state_digests.len()
    );

    // --- Trace artifact: the outage window, visible in Perfetto. ---
    let out =
        std::env::var("SLASH_TRACE_OUT").unwrap_or_else(|_| "results/failover_trace.json".into());
    let json = obs.chrome_trace_json();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&out, &json) {
        Ok(()) => println!(
            "trace        : {} events -> {out} ({} KiB, load at https://ui.perfetto.dev)",
            obs.events().len(),
            json.len() / 1024
        ),
        Err(e) => eprintln!("trace        : failed to write {out}: {e}"),
    }
}
