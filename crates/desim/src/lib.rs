#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-desim — deterministic discrete-event simulation kernel
//!
//! All of Slash's "hardware" substrates (the software RDMA fabric, NIC
//! bandwidth pacing, virtual CPU time) run on top of this kernel. It is a
//! classic discrete-event simulator: a priority queue of timestamped events,
//! a virtual clock in nanoseconds, and cooperative *processes* that are
//! stepped whenever they are scheduled to wake.
//!
//! Design goals, in order:
//!
//! 1. **Determinism.** Two runs with the same inputs produce byte-identical
//!    results. Ties between events at the same virtual time are broken by a
//!    monotone sequence number, and the kernel is strictly single-threaded.
//!    The tie-break order among same-timestamp events is *pluggable* (see
//!    [`TieBreak`]): the default is FIFO, and the `slash-verify` race
//!    checker replays protocol scenarios under seeded permutations of
//!    exactly those ties to explore alternative legal schedules.
//! 2. **Ergonomics for protocol code.** The RDMA channel and the epoch
//!    coherence protocol are written as ordinary Rust state machines that
//!    implement [`Process`]; shared structures (memory regions, completion
//!    queues) live behind `Rc<RefCell<...>>` handles.
//! 3. **Zero dependence on wall-clock time.** Throughput measurements in
//!    the reproduction are derived from [`SimTime`], which makes them exact
//!    and reproducible even on a one-core CI machine.
//!
//! The kernel knows nothing about RDMA or streaming; see `slash-rdma` for the
//! fabric model built on top.

pub mod clock;
pub(crate) mod event;
pub mod link;
pub mod process;
pub mod rng;
pub mod sim;

pub use clock::SimTime;
pub use event::{EventLabel, TieBreak};
pub use link::Link;
pub use process::{ProcId, Process, Step};
pub use rng::DetRng;
pub use sim::{ChoicePoint, EnabledEvent, Sim};
