#!/usr/bin/env bash
# Full verification gate for the workspace. Run from anywhere inside the
# repo; every step is offline and deterministic. Order is cheapest-first
# so failures surface fast.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/7] build (release, all targets)"
cargo build --release --workspace

echo "==> [2/7] tests (unit + integration + fixtures + mutations)"
cargo test --workspace -q

echo "==> [3/7] clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> [4/7] slash-lint (custom static analysis, burn-down allowlist)"
cargo run --release -p slash-verify --bin slash-lint

echo "==> [5/7] slash-race (schedule exploration smoke: 128 tie-breaks)"
cargo run --release -p slash-verify --bin slash-race -- --seeds 128

echo "==> [6/7] flight recorder (planted bug must be caught and dumped)"
cargo run --release -p slash-verify --bin slash-race -- --mutation ignore-credit-window >/dev/null
cargo run --release -p slash-verify --bin slash-race -- --mutation regress-vclock >/dev/null
echo "flight recorder: both planted bugs caught with dumps"

echo "==> [7/7] traced example (deterministic trace, validated JSON)"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
SLASH_TRACE_OUT="$trace_dir/a.json" cargo run --release --example ysb_pipeline >/dev/null
SLASH_TRACE_OUT="$trace_dir/b.json" cargo run --release --example ysb_pipeline >/dev/null
cmp "$trace_dir/a.json" "$trace_dir/b.json"
echo "trace: two same-seed runs byte-identical"
cargo run --release -p slash-verify --bin slash-trace-check -- "$trace_dir/a.json"

echo "ci: all gates green"
