//! Write-combining must be invisible in every output: for each of the
//! five evaluation workloads, a combiner-on run and a combiner-off run
//! must produce identical window results and bit-identical final SSB
//! state — healthy, and under fault injection.
//!
//! The combiner regroups per-record updates as `merge(state, fold(batch))`
//! and only engages for exactly-associative CRDTs, so equality here is
//! exact (`f64::to_bits`), not approximate. Emission *order* may differ —
//! flushing distinct partials paces epochs differently than per-record
//! writes — so results are compared as sorted multisets and state via the
//! order-independent per-node digests.

use slash::chaos::{ChaosConfig, FaultPlan, FtConfig};
use slash::core::{RunConfig, RunReport, SinkResult, SlashCluster};
use slash::desim::SimTime;
use slash::obs::Obs;
use slash::workloads::{cm, nb11, nb7, nb8, ysb, ysb_hot, GenConfig, Workload};

const NODES: usize = 2;
const WORKERS: usize = 2;

fn run_config(combine: bool) -> RunConfig {
    let mut cfg = RunConfig::new(NODES, WORKERS);
    cfg.collect_results = true;
    cfg.epoch_bytes = 64 * 1024; // frequent epochs stress the flush path
    cfg.combine = combine;
    cfg
}

fn run(w: Workload, combine: bool) -> RunReport {
    SlashCluster::run(w.plan, w.partitions, run_config(combine))
}

/// Results as a sorted multiset, exact to the bit for aggregate values.
fn result_multiset(results: &[SinkResult]) -> Vec<(u64, u64, u64)> {
    let mut out: Vec<(u64, u64, u64)> = results
        .iter()
        .map(|r| match r {
            SinkResult::Agg {
                window_id,
                key,
                value,
            } => (*window_id, *key, value.to_bits()),
            SinkResult::Join {
                window_id,
                key,
                pairs,
            } => (*window_id, *key, *pairs),
        })
        .collect();
    out.sort_unstable();
    out
}

fn assert_on_off_equal(gen: impl Fn() -> Workload, name: &str) {
    let on = run(gen(), true);
    let off = run(gen(), false);
    assert_eq!(on.records, off.records, "{name}: records diverged");
    assert_eq!(
        result_multiset(&on.results),
        result_multiset(&off.results),
        "{name}: window results diverged between combiner on/off"
    );
    assert_eq!(
        on.state_digests, off.state_digests,
        "{name}: final SSB state diverged between combiner on/off"
    );
    assert_eq!(off.metrics.combiner_folds, 0, "{name}: off run must not fold");
}

#[test]
fn ysb_combiner_on_off_equivalent() {
    assert_on_off_equal(|| ysb(&GenConfig::new(NODES * WORKERS, 5_000)), "ysb");
}

#[test]
fn ysb_hot_combiner_engages_and_stays_equivalent() {
    let gen = || ysb_hot(&GenConfig::new(NODES * WORKERS, 5_000));
    let on = run(gen(), true);
    // The hot key domain must actually exercise the combiner (the
    // adaptive bypass only fires on reuse-free streams).
    assert!(
        on.metrics.combiner_folds > 0,
        "combiner never engaged on the hot-key workload"
    );
    assert!(
        on.metrics.combiner_flushes < on.metrics.combiner_folds,
        "pre-aggregation collapsed nothing"
    );
    assert_on_off_equal(gen, "ysb_hot");
}

#[test]
fn cm_combiner_on_off_equivalent() {
    // CM's float mean is not exactly associative: the combiner must
    // decline (stay bit-identical) rather than engage.
    let gen = || cm(&GenConfig::new(NODES * WORKERS, 4_000));
    let on = run(gen(), true);
    assert_eq!(
        on.metrics.combiner_folds, 0,
        "float-mean state must never be pre-aggregated"
    );
    assert_on_off_equal(gen, "cm");
}

#[test]
fn nb7_combiner_on_off_equivalent() {
    assert_on_off_equal(|| nb7(&GenConfig::new(NODES * WORKERS, 4_000)), "nb7");
}

#[test]
fn nb8_combiner_on_off_equivalent() {
    assert_on_off_equal(|| nb8(&GenConfig::new(NODES * WORKERS, 2_500)), "nb8");
}

#[test]
fn nb11_combiner_on_off_equivalent() {
    assert_on_off_equal(|| nb11(&GenConfig::new(NODES * WORKERS, 2_000)), "nb11");
}

/// The combiner must also be invisible across a crash-and-recover run:
/// same fault plan, combiner on vs off, identical post-recovery results
/// and state. Uses a 3-node cluster so a crashed node has helpers to
/// promote, and the hot-key workload so the combiner genuinely engages
/// before and after the fault.
#[test]
fn chaos_crash_recovery_is_combiner_invariant() {
    let chaos = |combine: bool| {
        let w = ysb_hot(&GenConfig::new(3, 10_000));
        let mut cfg = RunConfig::new(3, 1);
        cfg.collect_results = true;
        cfg.epoch_bytes = 16 * 1024;
        cfg.combine = combine;
        let chaos_cfg = ChaosConfig {
            plan: FaultPlan::new().crash(SimTime::from_micros(200), 1),
            ft: FtConfig {
                detect_timeout: SimTime::from_micros(300),
                ckpt_max_chunk: 16 * 1024,
                ckpt_copies: 2,
            },
            pre_split: Vec::new(),
        };
        SlashCluster::run_chaos(w.plan, w.partitions, cfg, &chaos_cfg, Obs::disabled())
    };
    let (report_on, rec_on) = chaos(true);
    let (report_off, rec_off) = chaos(false);
    assert!(
        report_on.metrics.combiner_folds > 0,
        "combiner must engage in the chaos run"
    );
    assert!(
        !rec_on.events.is_empty(),
        "the fault must actually trigger recovery"
    );
    assert_eq!(report_on.records, report_off.records);
    assert_eq!(
        rec_on.results_digest, rec_off.results_digest,
        "post-recovery window results diverged between combiner on/off"
    );
    assert_eq!(
        rec_on.state_digests, rec_off.state_digests,
        "post-recovery state diverged between combiner on/off"
    );
}
