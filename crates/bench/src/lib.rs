#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-bench — the experiment harness
//!
//! One runner per table/figure of the paper's evaluation (§8). Each
//! experiment returns [`slash_perfmodel::Table`]s that the `repro` binary
//! prints and writes as CSV; integration tests assert the paper's
//! qualitative *shapes* on the same runners (who wins, by roughly what
//! factor, where trends bend).
//!
//! Scales default to a laptop-friendly configuration (4 workers/node,
//! 20 k records/worker) and can be raised toward the paper's setup with
//! `SLASH_WORKERS` / `SLASH_RECORDS` environment variables; throughput in
//! virtual time is scale-stable once runs reach steady state.

pub mod ablation;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod harness;
pub mod micro;
pub mod recovery;
pub mod rescale;
pub mod scale;
pub mod suts;

pub use scale::Scale;
