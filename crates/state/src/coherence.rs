//! Helper→leader delta shipping over RDMA channels (§7.2.2).
//!
//! A [`DeltaSender`] lives on a helper and owns the RDMA channel to one
//! leader; it queues encoded chunks and pushes them as channel credits
//! allow (the engine's scheduler pumps it between compute tasks, which is
//! how Slash "interleaves reception and merging of delta changes with
//! query processing"). A [`DeltaReceiver`] lives on the leader and merges
//! inbound chunks into the primary partition, advancing the vector clock
//! when an epoch's final chunk lands.

use slash_desim::{Sim, SimTime};
use slash_net::{ChannelReceiver, ChannelSender, MsgFlags, SpscReceiver, SpscSender};
use slash_obs::{Cat, Obs};
use slash_rdma::RdmaError;

use crate::delta::{try_parse_chunk, ChunkBuilder, DeltaDecodeError};
use crate::entry::EntryKind;
use crate::partition::Partition;
use crate::vclock::VectorClock;

/// Errors surfaced by the coherence protocol: transport failures from the
/// RDMA layer, or a delta chunk that failed strict wire validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The underlying RDMA channel failed.
    Rdma(RdmaError),
    /// An inbound delta chunk was malformed.
    Decode(DeltaDecodeError),
}

impl From<RdmaError> for StateError {
    fn from(e: RdmaError) -> Self {
        StateError::Rdma(e)
    }
}

impl From<DeltaDecodeError> for StateError {
    fn from(e: DeltaDecodeError) -> Self {
        StateError::Decode(e)
    }
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Rdma(e) => write!(f, "rdma channel error: {e:?}"),
            StateError::Decode(e) => write!(f, "delta decode error: {e}"),
        }
    }
}

/// One closed epoch retained for possible replay (fault tolerance).
///
/// Recovery resends the *original* encoded chunks rather than regenerating
/// them: the fragment's log was invalidated at epoch close, and replaying
/// verbatim is what makes a recovered run bit-identical to the no-fault
/// run. Retention is opt-in (see [`DeltaSender::set_retention`]) and
/// pruned once the epoch is covered by the leader's durable checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetainedEpoch {
    /// Epoch id (the fragment's epoch counter when it closed).
    pub epoch: u64,
    /// Helper watermark shipped with the epoch.
    pub watermark: u64,
    /// The exact encoded chunks, final chunk carrying the `fin` marker.
    pub chunks: Vec<Vec<u8>>,
}

/// The transport a delta endpoint ships over. The deterministic
/// simulator uses the modeled RDMA channel (costs, faults, credit
/// messages on the virtual wire); the threaded executor uses an
/// in-process SPSC link with the same FIFO + credit-bound semantics.
/// The coherence protocol above this enum is byte-identical either way —
/// that is what makes sim and threaded runs converge to the same state.
enum SenderPort {
    /// Simulated RDMA channel (deterministic backend).
    Rdma(ChannelSender),
    /// In-process SPSC link (threaded backend).
    Spsc(SpscSender),
}

impl SenderPort {
    fn payload_capacity(&self) -> usize {
        match self {
            SenderPort::Rdma(c) => c.payload_capacity(),
            SenderPort::Spsc(c) => c.payload_capacity(),
        }
    }

    /// Try to push one chunk; `Ok(false)` means "no credit, retry later".
    fn try_send(&mut self, sim: &mut Sim, chunk: &[u8]) -> Result<bool, RdmaError> {
        match self {
            SenderPort::Rdma(c) => c.try_send(sim, MsgFlags::STATE_DELTA, chunk),
            SenderPort::Spsc(c) => {
                if c.try_send(MsgFlags::STATE_DELTA, chunk) {
                    Ok(true)
                } else if c.is_error() {
                    Err(RdmaError::QpError)
                } else {
                    Ok(false)
                }
            }
        }
    }
}

/// Helper-side shipping endpoint for one (helper, leader) pair.
pub struct DeltaSender {
    port: SenderPort,
    outbox: std::collections::VecDeque<Vec<u8>>,
    /// Retain closed epochs for replay (fault-tolerant runs only).
    retain: bool,
    retained: Vec<RetainedEpoch>,
    /// Chunks shipped (stats).
    pub chunks_sent: u64,
    /// High-water mark of the outbox depth (queue-depth telemetry).
    peak_backlog: usize,
    obs: Obs,
    obs_pid: u32,
    obs_tid: u32,
}

impl DeltaSender {
    /// Wrap a channel whose consumer is the partition's leader.
    pub fn new(chan: ChannelSender) -> Self {
        DeltaSender::with_port(SenderPort::Rdma(chan))
    }

    /// Wrap an in-process SPSC link (threaded executor).
    pub fn over_spsc(link: SpscSender) -> Self {
        DeltaSender::with_port(SenderPort::Spsc(link))
    }

    fn with_port(port: SenderPort) -> Self {
        DeltaSender {
            port,
            outbox: std::collections::VecDeque::new(),
            retain: false,
            retained: Vec::new(),
            chunks_sent: 0,
            peak_backlog: 0,
            obs: Obs::disabled(),
            obs_pid: 0,
            obs_tid: 0,
        }
    }

    /// Attach a trace handle; `pid` is the helper node, `tid` the leader.
    /// Also instruments the underlying channel's verb events.
    pub fn instrument(&mut self, obs: Obs, pid: u32, tid: u32) {
        if let SenderPort::Rdma(chan) = &mut self.port {
            chan.instrument(obs.clone(), pid, tid);
        }
        self.obs = obs;
        self.obs_pid = pid;
        self.obs_tid = tid;
    }

    /// Close the fragment's open epoch and queue its delta for shipping.
    /// `watermark` is this helper's low watermark at the token; `now` is
    /// stamped into the chunk headers so the leader can measure merge
    /// latency (epoch-coherence "propose" phase).
    pub fn enqueue_epoch(&mut self, fragment: &mut Partition, watermark: u64, now: SimTime) {
        let epoch = fragment.epoch();
        let mut builder = ChunkBuilder::new(
            fragment.id as u32,
            epoch,
            watermark,
            now.as_nanos() / 1_000,
            self.port.payload_capacity(),
        );
        fragment.close_epoch(|h, v| builder.push(h.key, h.kind, v));
        let chunks = builder.finish();
        self.obs.instant(
            Cat::Epoch,
            "epoch-propose",
            self.obs_pid,
            self.obs_tid,
            now,
            &[
                ("epoch", epoch),
                ("watermark", watermark),
                ("chunks", chunks.len() as u64),
            ],
        );
        if self.retain {
            self.retained.push(RetainedEpoch {
                epoch,
                watermark,
                chunks: chunks.clone(),
            });
        }
        self.outbox.extend(chunks);
        self.peak_backlog = self.peak_backlog.max(self.outbox.len());
    }

    /// Enable (or disable) epoch retention for replay-based recovery.
    /// Fault-tolerant runs enable this before any epoch closes; the
    /// default path keeps the zero-copy, zero-retention behavior.
    pub fn set_retention(&mut self, retain: bool) {
        self.retain = retain;
    }

    /// Epochs retained for replay, oldest first.
    pub fn retained(&self) -> &[RetainedEpoch] {
        &self.retained
    }

    /// Install a retained-epoch list recovered from a checkpoint (the
    /// promoted replacement of a crashed helper starts from here). Enables
    /// retention as a side effect.
    pub fn restore_retained(&mut self, retained: Vec<RetainedEpoch>) {
        self.retain = true;
        self.retained = retained;
    }

    /// Drop retained epochs with id below `epoch` — they are covered by
    /// the leader's durable checkpoint and can never be asked for again.
    /// This is what bounds retention memory.
    pub fn prune_retained_below(&mut self, epoch: u64) {
        self.retained.retain(|r| r.epoch >= epoch);
    }

    /// Discard the outbox and re-queue the original chunks of every
    /// retained epoch with id ≥ `from_epoch` (channel re-establishment:
    /// resend exactly what the receiver has not committed). Returns the
    /// number of epochs queued.
    pub fn requeue_from(&mut self, from_epoch: u64) -> usize {
        self.outbox.clear();
        let mut n = 0;
        for r in &self.retained {
            if r.epoch >= from_epoch {
                self.outbox.extend(r.chunks.iter().cloned());
                n += 1;
            }
        }
        self.peak_backlog = self.peak_backlog.max(self.outbox.len());
        n
    }

    /// Whether the underlying channel's QP (or SPSC peer) is in the
    /// error state.
    pub fn is_error(&self) -> bool {
        match &self.port {
            SenderPort::Rdma(c) => c.is_error(),
            SenderPort::Spsc(c) => c.is_error(),
        }
    }

    /// Reset the underlying channel endpoint after a fault (the peer
    /// receiver must reset too). The outbox is kept: pumping resumes once
    /// both ends are re-established. SPSC links have no reset protocol —
    /// fault injection belongs to the simulated backend.
    pub fn reset_channel(&mut self) {
        if let SenderPort::Rdma(chan) = &mut self.port {
            chan.reset();
        }
    }

    /// Push queued chunks while channel credits allow. Returns the number
    /// of chunks sent this call.
    pub fn pump(&mut self, sim: &mut Sim) -> Result<usize, RdmaError> {
        let mut sent = 0;
        while let Some(chunk) = self.outbox.front() {
            if !self.port.try_send(sim, chunk)? {
                break;
            }
            self.outbox.pop_front();
            sent += 1;
            self.chunks_sent += 1;
        }
        Ok(sent)
    }

    /// Chunks still waiting for credit.
    pub fn backlog(&self) -> usize {
        self.outbox.len()
    }

    /// Deepest the outbox has ever been (queue-depth telemetry).
    pub fn peak_backlog(&self) -> usize {
        self.peak_backlog
    }

    /// Channel statistics.
    pub fn channel_stats(&self) -> &slash_net::ChannelStats {
        match &self.port {
            SenderPort::Rdma(c) => &c.stats,
            SenderPort::Spsc(c) => c.stats(),
        }
    }
}

/// A fully-received epoch staged until its source's checkpoint makes it
/// durable (commit gating, see [`DeltaReceiver::set_durable_epochs`]).
struct PendingEpoch {
    epoch: u64,
    watermark: u64,
    sent_us: u64,
    entries: Vec<(u128, EntryKind, Vec<u8>)>,
}

/// Receiver-side transport, mirroring [`SenderPort`].
enum ReceiverPort {
    /// Simulated RDMA channel (deterministic backend).
    Rdma(ChannelReceiver),
    /// In-process SPSC link (threaded backend).
    Spsc(SpscReceiver),
}

impl ReceiverPort {
    /// Poll one delivered chunk's payload, if any.
    fn poll_payload(&mut self, sim: &mut Sim) -> Result<Option<Vec<u8>>, RdmaError> {
        match self {
            ReceiverPort::Rdma(c) => c.poll_with(sim, |flags, payload| {
                debug_assert!(flags.contains(MsgFlags::STATE_DELTA));
                payload.to_vec()
            }),
            ReceiverPort::Spsc(c) => Ok(c.try_recv().map(|(flags, payload)| {
                debug_assert!(flags.contains(MsgFlags::STATE_DELTA));
                payload
            })),
        }
    }
}

/// Leader-side merge endpoint for one inbound helper.
///
/// Merging is *epoch-atomic*: chunks are staged until the epoch's final
/// chunk arrives, then the whole epoch is applied at once. A partially
/// received epoch from a crashed or flapped helper is simply discarded and
/// replayed — and because every epoch carries its fragment's epoch id,
/// replayed epochs the receiver already committed are deduplicated, which
/// is what makes non-idempotent CRDT merges (counters *add*) safe to
/// replay at epoch granularity.
pub struct DeltaReceiver {
    port: ReceiverPort,
    /// Which executor the deltas come from (vector-clock slot).
    helper: usize,
    /// Entries of the in-progress (not yet `fin`) epoch.
    staged: Vec<(u128, EntryKind, Vec<u8>)>,
    /// Fully received epochs awaiting the durability gate, oldest first.
    pending: std::collections::VecDeque<PendingEpoch>,
    /// Next epoch id expected to commit (epochs `< next_epoch` are
    /// committed; replays of them are discarded).
    next_epoch: u64,
    /// Commit gate: only epochs `< durable_epochs` may merge. `u64::MAX`
    /// (the default) disables gating for non-fault-tolerant runs.
    durable_epochs: u64,
    /// Entries merged (stats).
    pub entries_merged: u64,
    obs: Obs,
    obs_pid: u32,
    /// Registry label for epoch-merge latency (`chan=<helper>-><leader>`).
    obs_label: String,
}

impl DeltaReceiver {
    /// Wrap a channel whose producer is helper executor `helper`.
    pub fn new(chan: ChannelReceiver, helper: usize) -> Self {
        DeltaReceiver::with_port(ReceiverPort::Rdma(chan), helper)
    }

    /// Wrap an in-process SPSC link (threaded executor).
    pub fn over_spsc(link: SpscReceiver, helper: usize) -> Self {
        DeltaReceiver::with_port(ReceiverPort::Spsc(link), helper)
    }

    fn with_port(port: ReceiverPort, helper: usize) -> Self {
        DeltaReceiver {
            port,
            helper,
            staged: Vec::new(),
            pending: std::collections::VecDeque::new(),
            next_epoch: 0,
            durable_epochs: u64::MAX,
            entries_merged: 0,
            obs: Obs::disabled(),
            obs_pid: 0,
            obs_label: String::new(),
        }
    }

    /// Attach a trace handle; `leader` is the node this receiver merges
    /// into. Also instruments the underlying channel's verb events.
    pub fn instrument(&mut self, obs: Obs, leader: u32) {
        if let ReceiverPort::Rdma(chan) = &mut self.port {
            chan.instrument(obs.clone(), leader, self.helper as u32);
        }
        self.obs = obs;
        self.obs_pid = leader;
        self.obs_label = format!("chan={}->{}", self.helper, leader);
    }

    /// The helper executor this receiver listens to.
    pub fn helper(&self) -> usize {
        self.helper
    }

    /// Channel statistics.
    pub fn channel_stats(&self) -> &slash_net::ChannelStats {
        match &self.port {
            ReceiverPort::Rdma(c) => &c.stats,
            ReceiverPort::Spsc(c) => c.stats(),
        }
    }

    /// Registry label used by this receiver's instrumentation.
    pub fn obs_label(&self) -> &str {
        &self.obs_label
    }

    /// Next epoch id this receiver expects to commit (== number of epochs
    /// from its helper already merged into the primary, counting from 0).
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Seed the committed-epoch horizon (recovery: a restored primary
    /// already contains the helper's epochs `< next_epoch`, so replays of
    /// them must be discarded, not re-merged).
    pub fn seed_next_epoch(&mut self, next_epoch: u64) {
        self.next_epoch = next_epoch;
    }

    /// Set the commit gate: epochs with id `< durable_epochs` may merge.
    ///
    /// Fault-tolerant runs advance this as the helper's checkpoints become
    /// durable, guaranteeing that every committed epoch is replayable from
    /// a checkpoint if *this* node later crashes. `u64::MAX` disables the
    /// gate.
    pub fn set_durable_epochs(&mut self, durable_epochs: u64) {
        self.durable_epochs = durable_epochs;
    }

    /// Fully received epochs currently blocked on the durability gate.
    pub fn pending_epochs(&self) -> usize {
        self.pending.len()
    }

    /// Discard everything not yet committed: the in-progress epoch's
    /// staged entries and all gated pending epochs. Called when the
    /// channel is torn down — the helper (or its replacement) will replay
    /// these epochs verbatim.
    pub fn abort_uncommitted(&mut self) {
        self.staged.clear();
        self.pending.clear();
    }

    /// Whether the underlying channel's QP is in the error state. SPSC
    /// links never error on the receive side (a vanished producer just
    /// stops producing).
    pub fn is_error(&self) -> bool {
        match &self.port {
            ReceiverPort::Rdma(c) => c.is_error(),
            ReceiverPort::Spsc(_) => false,
        }
    }

    /// Reset the underlying channel endpoint after a fault and discard
    /// uncommitted epochs (the peer sender must reset and requeue).
    pub fn reset_channel(&mut self) {
        if let ReceiverPort::Rdma(chan) = &mut self.port {
            chan.reset();
        }
        self.abort_uncommitted();
    }

    /// Drain every delivered chunk, staging entries until an epoch's final
    /// chunk arrives, then commit complete epochs (in order) as far as the
    /// durability gate allows: merge into `primary` and advance `vclock`.
    /// Returns entries merged this call.
    ///
    /// A malformed chunk (strict wire validation) captures a
    /// flight-recorder dump with vector-clock context and surfaces
    /// [`StateError::Decode`] instead of panicking.
    pub fn pump(
        &mut self,
        sim: &mut Sim,
        primary: &mut Partition,
        vclock: &mut VectorClock,
    ) -> Result<u64, StateError> {
        loop {
            let polled = self.port.poll_payload(sim)?;
            let Some(payload) = polled else { break };
            let staged = &mut self.staged;
            let parsed = try_parse_chunk(&payload, |key, kind, value| {
                staged.push((key, kind, value.to_vec()));
            });
            let header = match parsed {
                Ok(h) => h,
                Err(e) => {
                    self.obs.record_failure(
                        &format!("delta chunk decode failed: {e}"),
                        &format!(
                            "helper={} partition={} vclock={:?}",
                            self.helper,
                            primary.id,
                            vclock.snapshot()
                        ),
                    );
                    return Err(e.into());
                }
            };
            debug_assert_eq!(header.partition as usize, primary.id);
            if header.fin {
                let entries = std::mem::take(&mut self.staged);
                if header.epoch < self.next_epoch {
                    // Replay of an epoch already merged into the primary:
                    // discard whole (epoch-granularity idempotence).
                    self.obs.instant(
                        Cat::Epoch,
                        "epoch-dup-discard",
                        self.obs_pid,
                        self.helper as u32,
                        sim.now(),
                        &[("epoch", header.epoch), ("committed", self.next_epoch)],
                    );
                } else {
                    debug_assert!(
                        self.pending
                            .back()
                            .is_none_or(|p| header.epoch > p.epoch),
                        "epochs arrive in order on a FIFO channel"
                    );
                    self.pending.push_back(PendingEpoch {
                        epoch: header.epoch,
                        watermark: header.watermark,
                        sent_us: header.sent_us,
                        entries,
                    });
                }
            }
        }
        let merged = self.commit_ready(sim, primary, vclock);
        self.entries_merged += merged;
        Ok(merged)
    }

    /// Commit pending epochs allowed by the durability gate, in order.
    fn commit_ready(
        &mut self,
        sim: &mut Sim,
        primary: &mut Partition,
        vclock: &mut VectorClock,
    ) -> u64 {
        let mut merged = 0;
        while self
            .pending
            .front()
            .is_some_and(|p| p.epoch < self.durable_epochs)
        {
            let Some(ep) = self.pending.pop_front() else {
                break;
            };
            for (key, kind, value) in &ep.entries {
                match kind {
                    EntryKind::Fixed => primary.merge_fixed(*key, value),
                    EntryKind::Appended => primary.append(*key, value),
                }
                merged += 1;
            }
            // Epoch "merge" completes here; the vclock update below is
            // the "install" phase the rest of the node observes.
            let now = sim.now();
            let sent = SimTime::from_nanos(ep.sent_us.saturating_mul(1_000));
            self.obs.span(
                Cat::Epoch,
                "epoch-merge",
                self.obs_pid,
                self.helper as u32,
                sent.min(now),
                now,
                &[("epoch", ep.epoch), ("watermark", ep.watermark)],
            );
            if ep.sent_us > 0 {
                let lat = now.as_nanos().saturating_sub(sent.as_nanos());
                self.obs
                    .hist_record("epoch_merge_latency_ns", &self.obs_label, lat);
            }
            vclock.update(self.helper, ep.watermark);
            self.next_epoch = ep.epoch + 1;
            self.obs.instant(
                Cat::Epoch,
                "epoch-install",
                self.obs_pid,
                self.helper as u32,
                now,
                &[("epoch", ep.epoch), ("watermark", ep.watermark)],
            );
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crdts::CounterCrdt;
    use slash_desim::Sim;
    use slash_net::{create_channel, ChannelConfig};
    use slash_rdma::{Fabric, FabricConfig};

    fn pair(cfg: ChannelConfig) -> (Sim, DeltaSender, DeltaReceiver) {
        let sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let helper = fabric.add_node();
        let leader = fabric.add_node();
        let (tx, rx) = create_channel(&fabric, helper, leader, cfg);
        (sim, DeltaSender::new(tx), DeltaReceiver::new(rx, 1))
    }

    #[test]
    fn ship_and_merge_counters() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        // Leader already has local counts; helper contributes more.
        primary.rmw(7, |v| CounterCrdt::add(v, 100));
        fragment.rmw(7, |v| CounterCrdt::add(v, 11));
        fragment.rmw(8, |v| CounterCrdt::add(v, 22));

        tx.enqueue_epoch(&mut fragment, 5_000, sim.now());
        tx.pump(&mut sim).unwrap();
        sim.run();
        let merged = rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        assert_eq!(merged, 2);
        assert_eq!(primary.get(7).map(CounterCrdt::get), Some(111));
        assert_eq!(primary.get(8).map(CounterCrdt::get), Some(22));
        assert_eq!(vclock.get(1), 5_000, "watermark piggybacked");
        assert_eq!(vclock.get(0), 0, "leader's own slot untouched");
    }

    #[test]
    fn empty_epoch_still_advances_the_clock() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        tx.enqueue_epoch(&mut fragment, 777, sim.now());
        tx.pump(&mut sim).unwrap();
        sim.run();
        assert_eq!(rx.pump(&mut sim, &mut primary, &mut vclock).unwrap(), 0);
        assert_eq!(vclock.get(1), 777);
    }

    #[test]
    fn backlog_drains_across_credit_stalls() {
        // A tiny channel forces the sender to stall on credits mid-epoch;
        // repeated pumps (as the scheduler would do) must drain everything.
        let cfg = ChannelConfig {
            credits: 2,
            buffer_size: 128,
            credit_batch: 1,
        };
        let (mut sim, mut tx, mut rx) = pair(cfg);
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        for k in 0..50u128 {
            fragment.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        tx.enqueue_epoch(&mut fragment, 42, sim.now());
        assert!(tx.backlog() > 2, "must not fit in one credit window");

        let mut spins = 0;
        while tx.backlog() > 0 || vclock.get(1) < 42 {
            spins += 1;
            assert!(spins < 10_000, "shipping deadlocked");
            tx.pump(&mut sim).unwrap();
            sim.run();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
            sim.run();
        }
        for k in 0..50u128 {
            assert_eq!(primary.get(k).map(CounterCrdt::get), Some(1));
        }
        assert_eq!(rx.entries_merged, 50);
    }

    #[test]
    fn durability_gate_defers_commits() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        rx.set_durable_epochs(0); // nothing durable yet
        fragment.rmw(3, |v| CounterCrdt::add(v, 9));
        tx.enqueue_epoch(&mut fragment, 10, sim.now());
        tx.pump(&mut sim).unwrap();
        sim.run();
        assert_eq!(rx.pump(&mut sim, &mut primary, &mut vclock).unwrap(), 0);
        assert_eq!(rx.pending_epochs(), 1, "epoch staged, not committed");
        assert_eq!(primary.get(3), None);
        assert_eq!(vclock.get(1), 0, "clock must not advance early");

        rx.set_durable_epochs(1); // helper's checkpoint covers epoch 0
        assert_eq!(rx.pump(&mut sim, &mut primary, &mut vclock).unwrap(), 1);
        assert_eq!(primary.get(3).map(CounterCrdt::get), Some(9));
        assert_eq!(vclock.get(1), 10);
        assert_eq!(rx.next_epoch(), 1);
    }

    #[test]
    fn replayed_epochs_are_discarded_not_remerged() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        tx.set_retention(true);
        fragment.rmw(1, |v| CounterCrdt::add(v, 5));
        tx.enqueue_epoch(&mut fragment, 10, sim.now());
        fragment.rmw(1, |v| CounterCrdt::add(v, 7));
        tx.enqueue_epoch(&mut fragment, 20, sim.now());
        while tx.backlog() > 0 {
            tx.pump(&mut sim).unwrap();
            sim.run();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        }
        sim.run();
        rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        assert_eq!(primary.get(1).map(CounterCrdt::get), Some(12));
        assert_eq!(rx.next_epoch(), 2);

        // Replay everything (as channel re-establishment would after the
        // receiver reported nothing committed-since): counters must NOT
        // double — epoch ids 0 and 1 are already committed.
        assert_eq!(tx.requeue_from(0), 2);
        while tx.backlog() > 0 {
            tx.pump(&mut sim).unwrap();
            sim.run();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        }
        sim.run();
        rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        assert_eq!(
            primary.get(1).map(CounterCrdt::get),
            Some(12),
            "replayed epochs deduplicated"
        );
        // Pruning below the committed horizon bounds retention memory.
        tx.prune_retained_below(rx.next_epoch());
        assert!(tx.retained().is_empty());
    }

    #[test]
    fn partial_epoch_is_aborted_and_replayed_after_reset() {
        // Tiny buffers force one epoch across many chunks so a link flap
        // can strand a *partial* epoch at the receiver.
        let cfg = ChannelConfig {
            credits: 2,
            buffer_size: 128,
            credit_batch: 1,
        };
        let mut sim = Sim::new();
        let fabric = slash_rdma::Fabric::new(FabricConfig::default());
        let helper = fabric.add_node();
        let leader = fabric.add_node();
        let (ctx, crx) = create_channel(&fabric, helper, leader, cfg);
        let mut tx = DeltaSender::new(ctx);
        let mut rx = DeltaReceiver::new(crx, 1);
        tx.set_retention(true);

        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);
        for k in 0..40u128 {
            fragment.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        tx.enqueue_epoch(&mut fragment, 10, sim.now());
        assert!(tx.backlog() > 2);

        // Ship a couple of chunks, then the link goes down mid-epoch.
        tx.pump(&mut sim).unwrap();
        sim.run();
        rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        sim.run(); // deliver the credit return
        fabric.set_link_down(leader, true);
        let _ = tx.pump(&mut sim); // flushed; QP errors
        sim.run();
        assert!(tx.is_error());
        assert_eq!(primary.key_count(), 0, "no partial merge");

        // Recovery: link back, both endpoints reset, replay from the
        // receiver's committed horizon.
        fabric.set_link_down(leader, false);
        tx.reset_channel();
        rx.reset_channel();
        assert_eq!(tx.requeue_from(rx.next_epoch()), 1);
        let mut spins = 0;
        while tx.backlog() > 0 || vclock.get(1) < 10 {
            spins += 1;
            assert!(spins < 10_000, "recovery deadlocked");
            tx.pump(&mut sim).unwrap();
            sim.run();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
            sim.run();
        }
        for k in 0..40u128 {
            assert_eq!(primary.get(k).map(CounterCrdt::get), Some(1), "key {k}");
        }
        assert_eq!(vclock.get(1), 10);
    }

    #[test]
    fn spsc_port_ships_and_merges_like_the_rdma_channel() {
        // Same protocol exercise as `ship_and_merge_counters`, but over
        // the threaded executor's in-process link. The sim here only
        // provides timestamps — no events are scheduled.
        let mut sim = Sim::new();
        let (ltx, lrx) = slash_net::spsc_channel(ChannelConfig::default());
        let mut tx = DeltaSender::over_spsc(ltx);
        let mut rx = DeltaReceiver::over_spsc(lrx, 1);
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        primary.rmw(7, |v| CounterCrdt::add(v, 100));
        fragment.rmw(7, |v| CounterCrdt::add(v, 11));
        fragment.rmw(8, |v| CounterCrdt::add(v, 22));

        tx.enqueue_epoch(&mut fragment, 5_000, sim.now());
        tx.pump(&mut sim).unwrap();
        let merged = rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        assert_eq!(merged, 2);
        assert_eq!(primary.get(7).map(CounterCrdt::get), Some(111));
        assert_eq!(primary.get(8).map(CounterCrdt::get), Some(22));
        assert_eq!(vclock.get(1), 5_000);
        assert_eq!(tx.channel_stats().buffers, rx.channel_stats().buffers);
    }

    #[test]
    fn spsc_port_backpressures_and_drains() {
        // A 2-credit link with tiny buffers forces multi-chunk epochs to
        // stall mid-flight; repeated pumps must drain everything in FIFO
        // order, exactly like `backlog_drains_across_credit_stalls`.
        let cfg = ChannelConfig {
            credits: 2,
            buffer_size: 128,
            credit_batch: 1,
        };
        let mut sim = Sim::new();
        let (ltx, lrx) = slash_net::spsc_channel(cfg);
        let mut tx = DeltaSender::over_spsc(ltx);
        let mut rx = DeltaReceiver::over_spsc(lrx, 1);
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        for k in 0..50u128 {
            fragment.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        tx.enqueue_epoch(&mut fragment, 42, sim.now());
        assert!(tx.backlog() > 2, "must not fit in one credit window");

        let mut spins = 0;
        while tx.backlog() > 0 || vclock.get(1) < 42 {
            spins += 1;
            assert!(spins < 10_000, "shipping deadlocked");
            tx.pump(&mut sim).unwrap();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        }
        for k in 0..50u128 {
            assert_eq!(primary.get(k).map(CounterCrdt::get), Some(1));
        }
        assert!(tx.channel_stats().credit_stalls > 0, "bound exercised");
    }

    #[test]
    fn epochs_merge_in_order() {
        let (mut sim, mut tx, mut rx) = pair(ChannelConfig::default());
        let desc = CounterCrdt::descriptor();
        let mut fragment = Partition::new(0, desc);
        let mut primary = Partition::new(0, desc);
        let mut vclock = VectorClock::new(2);

        for epoch in 0..5u64 {
            fragment.rmw(1, |v| CounterCrdt::add(v, epoch + 1));
            tx.enqueue_epoch(&mut fragment, (epoch + 1) * 10, sim.now());
        }
        let mut spins = 0;
        while tx.backlog() > 0 {
            spins += 1;
            assert!(spins < 1000);
            tx.pump(&mut sim).unwrap();
            sim.run();
            rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        }
        sim.run();
        rx.pump(&mut sim, &mut primary, &mut vclock).unwrap();
        assert_eq!(primary.get(1).map(CounterCrdt::get), Some(1 + 2 + 3 + 4 + 5));
        assert_eq!(vclock.get(1), 50);
    }
}
