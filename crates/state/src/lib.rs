#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! # slash-state — the Slash State Backend (SSB, paper §7)
//!
//! A distributed, concurrent key-value store for in-memory operator state.
//! The key space is split into `n` *partitions*, one per executor node.
//! Every node is the **leader** of exactly one partition and a **helper**
//! for every other: because Slash never re-partitions the input stream, a
//! node routinely updates keys whose leader is elsewhere, accumulating
//! those updates in a local *fragment* of the foreign partition.
//!
//! Fragments are reconciled by an **epoch-based coherence protocol**
//! (§7.2.2): at every epoch token a helper ① bumps the partition's epoch
//! counter, ② marks the freshly-written region of its log read-only,
//! ③ ships it to the leader over an RDMA channel, and ④ invalidates the
//! shipped region so subsequent read-modify-writes restart from the CRDT
//! zero value (delta-state semantics). Leaders merge inbound deltas into
//! their primary partition with the state's CRDT merge function, so any
//! interleaving of concurrent updates converges to the sequential result.
//!
//! Storage follows FASTER's split of **hash index** ([`index`]) from
//! **log-structured storage** ([`log`]): the index maps key hashes to log
//! addresses and stores no keys; the log stores key-value entries densely,
//! giving the temporal locality that makes delta extraction a contiguous
//! byte-range scan instead of pointer chasing (§7.2.1).
//!
//! Watermarks ride along with state deltas ([`vclock`]), which is how
//! leaders learn that a window can be triggered consistently (property P1).

pub mod backend;
pub mod coherence;
pub mod combiner;
pub mod crdts;
pub mod crdts_hll;
pub mod delta;
pub mod descriptor;
pub mod entry;
pub mod hash;
pub mod index;
pub mod log;
pub mod partition;
pub mod snapshot;
pub mod split;
pub mod vclock;

pub use backend::{SsbConfig, SsbNode, TriggeredValue};
pub use coherence::{DeltaReceiver, DeltaSender, RetainedEpoch, StateError};
pub use combiner::WriteCombiner;
pub use delta::DeltaDecodeError;
pub use crdts::{CounterCrdt, MaxCrdt, MeanCrdt, MinCrdt, SumF64Crdt};
pub use crdts_hll::HllCrdt;
pub use descriptor::{StateDescriptor, ValueKind};
pub use hash::{pack_key, unpack_key, StateKey};
pub use partition::Partition;
pub use snapshot::{chunks_digest, restore, snapshot_chunks};
pub use split::{SplitLedger, SUB_KEY_TAG};
pub use vclock::VectorClock;
