//! In-memory stream sources.
//!
//! The evaluation methodology (paper §8.2.1) pre-generates datasets and
//! streams them from main memory, making memory bandwidth the ingestion
//! ceiling. A [`MemorySource`] hands out record batches from a shared
//! buffer; the worker charges the streaming cost against the node's
//! memory link.

use std::rc::Rc;

use slash_desim::SimTime;

use crate::record::RecordSchema;

/// Maximum piecewise-constant segments in a [`RateCurve`]. Fixed so the
/// curve stays `Copy` and can ride inside [`crate::RunConfig`].
pub const MAX_RATE_SEGMENTS: usize = 8;

/// A piecewise-constant arrival-rate curve: from each segment's start
/// instant, records are released at its rate (records per second of
/// virtual time). The last segment extends forever. Used to model load
/// that varies over a run — e.g. the diurnal curve driving elastic
/// rescaling — while staying fully deterministic: release times are pure
/// integer functions of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateCurve {
    /// `(from_ns, records_per_sec)` segments, ascending by start instant.
    segs: [(u64, u64); MAX_RATE_SEGMENTS],
    len: usize,
}

impl RateCurve {
    /// Build a curve from `(start, records_per_sec)` segments. The first
    /// segment must start at time zero, starts must strictly ascend, and
    /// the final rate must be positive (a source trailing off to zero
    /// would never exhaust, deadlocking the run).
    pub fn new(segments: &[(SimTime, u64)]) -> Self {
        assert!(
            !segments.is_empty() && segments.len() <= MAX_RATE_SEGMENTS,
            "1..={MAX_RATE_SEGMENTS} segments"
        );
        assert_eq!(segments[0].0, SimTime::ZERO, "curve must start at t=0");
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segment starts must strictly ascend"
        );
        assert!(
            segments[segments.len() - 1].1 > 0,
            "final rate must be positive or the source never drains"
        );
        let mut segs = [(0u64, 0u64); MAX_RATE_SEGMENTS];
        for (i, &(at, rate)) in segments.iter().enumerate() {
            segs[i] = (at.as_nanos(), rate);
        }
        RateCurve {
            segs,
            len: segments.len(),
        }
    }

    /// A flat curve: `rate` records per second from time zero.
    pub fn constant(rate: u64) -> Self {
        Self::new(&[(SimTime::ZERO, rate)])
    }

    /// Records released by instant `now` (cumulative, floored per
    /// segment so it is monotone and overflow-safe).
    pub fn released_records(&self, now: SimTime) -> u64 {
        let now_ns = now.as_nanos();
        let mut total: u64 = 0;
        for i in 0..self.len {
            let (from, rate) = self.segs[i];
            if now_ns <= from {
                break;
            }
            let until = if i + 1 < self.len {
                self.segs[i + 1].0.min(now_ns)
            } else {
                now_ns
            };
            total = total
                .saturating_add(((until - from) as u128 * rate as u128 / 1_000_000_000) as u64);
        }
        total
    }

    /// Earliest instant at which at least `k` records are released
    /// (the inverse of [`Self::released_records`], rounded up).
    pub fn release_time(&self, k: u64) -> SimTime {
        if k == 0 {
            return SimTime::ZERO;
        }
        let mut cum: u64 = 0;
        for i in 0..self.len {
            let (from, rate) = self.segs[i];
            let seg_cap = if i + 1 < self.len {
                if rate == 0 {
                    0
                } else {
                    ((self.segs[i + 1].0 - from) as u128 * rate as u128 / 1_000_000_000) as u64
                }
            } else {
                u64::MAX - cum // last segment extends forever
            };
            if k <= cum + seg_cap && rate > 0 {
                let need = (k - cum) as u128;
                let dt = (need * 1_000_000_000).div_ceil(rate as u128) as u64;
                return SimTime::from_nanos(from + dt);
            }
            cum += seg_cap;
        }
        // Unreachable given the positive-final-rate invariant.
        SimTime::from_nanos(u64::MAX / 2)
    }
}

/// Outcome of polling a (possibly rate-paced) source at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourcePoll {
    /// A batch is available: byte range within the buffer.
    Batch((usize, usize)),
    /// The pacing curve has not released the next record yet; retry at
    /// the given instant.
    NotReady(SimTime),
    /// The stream is fully consumed.
    Exhausted,
}

/// A pre-generated, in-memory partition of a stream, consumed in batches.
#[derive(Clone)]
pub struct MemorySource {
    data: Rc<Vec<u8>>,
    schema: RecordSchema,
    pos: usize,
    batch_bytes: usize,
    pacing: Option<RateCurve>,
}

impl MemorySource {
    /// Wrap a pre-generated buffer. `batch_records` is the number of
    /// records handed out per call (the unit of cooperative scheduling).
    pub fn new(data: Rc<Vec<u8>>, schema: RecordSchema, batch_records: usize) -> Self {
        assert!(batch_records > 0);
        assert_eq!(
            data.len() % schema.size,
            0,
            "buffer is not a whole number of records"
        );
        MemorySource {
            data,
            schema,
            pos: 0,
            batch_bytes: batch_records * schema.size,
            pacing: None,
        }
    }

    /// Pace this source with an arrival-rate curve: batches become
    /// available only as the curve releases records over virtual time.
    /// Without pacing every record is available immediately (the
    /// pre-generated-dataset methodology of §8.2.1).
    pub fn set_pacing(&mut self, curve: RateCurve) {
        self.pacing = Some(curve);
    }

    /// The record layout.
    pub fn schema(&self) -> &RecordSchema {
        &self.schema
    }

    /// Total records in this partition.
    pub fn total_records(&self) -> usize {
        self.data.len() / self.schema.size
    }

    /// Records not yet handed out.
    pub fn remaining_records(&self) -> usize {
        (self.data.len() - self.pos) / self.schema.size
    }

    /// Whether the stream is exhausted.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Current read position in bytes (always a whole number of records).
    /// Checkpoints record this so a replacement worker can resume ingest
    /// exactly where the snapshot left off.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Resume reading at `pos` (a byte offset captured by [`Self::position`]).
    pub fn seek(&mut self, pos: usize) {
        assert_eq!(pos % self.schema.size, 0, "seek must land on a record");
        assert!(pos <= self.data.len(), "seek past end of stream");
        self.pos = pos;
    }

    /// Take the next batch; returns the byte range within [`Self::data`].
    pub fn next_range(&mut self) -> Option<(usize, usize)> {
        if self.exhausted() {
            return None;
        }
        let start = self.pos;
        let end = (start + self.batch_bytes).min(self.data.len());
        self.pos = end;
        Some((start, end))
    }

    /// Poll for the next batch at instant `now`, honouring the pacing
    /// curve: a paced source hands out only records the curve has
    /// released so far (batches may come up short near the release
    /// frontier). Unpaced sources behave exactly like
    /// [`Self::next_range`].
    pub fn poll_range(&mut self, now: SimTime) -> SourcePoll {
        if self.exhausted() {
            return SourcePoll::Exhausted;
        }
        let Some(curve) = self.pacing else {
            return match self.next_range() {
                Some(r) => SourcePoll::Batch(r),
                None => SourcePoll::Exhausted,
            };
        };
        let released = (curve.released_records(now) as usize).min(self.total_records());
        let released_bytes = released * self.schema.size;
        if released_bytes <= self.pos {
            let next_rec = self.pos / self.schema.size + 1;
            return SourcePoll::NotReady(curve.release_time(next_rec as u64));
        }
        let start = self.pos;
        let end = (start + self.batch_bytes).min(released_bytes);
        self.pos = end;
        SourcePoll::Batch((start, end))
    }

    /// The underlying buffer.
    pub fn data(&self) -> &Rc<Vec<u8>> {
        &self.data
    }
}

impl std::fmt::Debug for MemorySource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySource")
            .field("records", &self.total_records())
            .field("pos", &self.pos)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(n: usize, size: usize) -> Rc<Vec<u8>> {
        Rc::new(vec![0u8; n * size])
    }

    #[test]
    fn batches_cover_everything_once() {
        let schema = RecordSchema::plain(16);
        let mut s = MemorySource::new(buf(10, 16), schema, 3);
        assert_eq!(s.total_records(), 10);
        let mut seen = 0;
        while let Some((a, b)) = s.next_range() {
            assert_eq!((b - a) % 16, 0);
            seen += (b - a) / 16;
        }
        assert_eq!(seen, 10);
        assert!(s.exhausted());
        assert_eq!(s.next_range(), None);
        assert_eq!(s.remaining_records(), 0);
    }

    #[test]
    fn last_batch_may_be_short() {
        let schema = RecordSchema::plain(8);
        let mut s = MemorySource::new(buf(5, 8), schema, 4);
        assert_eq!(s.next_range(), Some((0, 32)));
        assert_eq!(s.next_range(), Some((32, 40)));
        assert_eq!(s.next_range(), None);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn torn_buffers_are_rejected() {
        MemorySource::new(Rc::new(vec![0u8; 17]), RecordSchema::plain(8), 1);
    }

    #[test]
    fn rate_curve_releases_and_inverts_consistently() {
        // 1000 rec/s for the first millisecond, then 4000 rec/s.
        let c = RateCurve::new(&[
            (SimTime::ZERO, 1000),
            (SimTime::from_millis(1), 4000),
        ]);
        assert_eq!(c.released_records(SimTime::ZERO), 0);
        assert_eq!(c.released_records(SimTime::from_millis(1)), 1);
        // 1ms into the fast segment: 1 + 4 records.
        assert_eq!(c.released_records(SimTime::from_millis(2)), 5);
        // release_time is the exact inverse: at its instant the record
        // count is reached, one nanosecond earlier it is not.
        for k in 1..20 {
            let t = c.release_time(k);
            assert!(c.released_records(t) >= k, "k={k}");
            let before = SimTime::from_nanos(t.as_nanos() - 1);
            assert!(c.released_records(before) < k, "k={k}");
        }
    }

    #[test]
    fn paced_source_withholds_then_drains_everything() {
        let schema = RecordSchema::plain(8);
        let mut s = MemorySource::new(buf(10, 8), schema, 4);
        s.set_pacing(RateCurve::constant(1_000_000)); // 1 rec/µs
        assert_eq!(
            s.poll_range(SimTime::ZERO),
            SourcePoll::NotReady(SimTime::from_micros(1))
        );
        // 2µs in: 2 records released, batch comes up short of 4.
        assert_eq!(
            s.poll_range(SimTime::from_micros(2)),
            SourcePoll::Batch((0, 16))
        );
        // Everything released: full batches until exhaustion.
        let mut seen = 16;
        loop {
            match s.poll_range(SimTime::from_secs(1)) {
                SourcePoll::Batch((a, b)) => seen += b - a,
                SourcePoll::Exhausted => break,
                SourcePoll::NotReady(_) => panic!("curve fully released"),
            }
        }
        assert_eq!(seen, 80);
    }

    #[test]
    fn unpaced_poll_matches_next_range() {
        let schema = RecordSchema::plain(8);
        let mut a = MemorySource::new(buf(5, 8), schema, 4);
        let mut b = MemorySource::new(buf(5, 8), schema, 4);
        loop {
            let pa = a.poll_range(SimTime::ZERO);
            match (pa, b.next_range()) {
                (SourcePoll::Batch(x), Some(y)) => assert_eq!(x, y),
                (SourcePoll::Exhausted, None) => break,
                other => panic!("diverged: {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "final rate")]
    fn zero_final_rate_is_rejected() {
        RateCurve::new(&[(SimTime::ZERO, 0)]);
    }
}
