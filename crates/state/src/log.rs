//! Log-structured storage (LSS) — the value store of the SSB (§7.2.1).
//!
//! A hybrid log in FASTER's sense: entries are appended at the tail and the
//! *mutable region* (everything at or above the epoch-begin address) allows
//! in-place updates; entries below it are read-only (they have been, or are
//! being, shipped to a leader). Storage is a chain of fixed-size segments
//! with a monotone logical address space; each segment owns `seg_size`
//! of address space even when padding seals it early, which keeps
//! address→segment arithmetic trivial.
//!
//! Segments are reclaimed when every entry in them is dead (shipped and
//! invalidated on helpers; triggered and garbage-collected on leaders),
//! which realizes the paper's "adaptively resizing circular buffer":
//! capacity grows on demand and shrinks back when epochs or windows retire.

use std::collections::VecDeque;

use crate::entry::{stored_size, EntryHeader, EntryKind, HEADER_SIZE};
#[cfg(test)]
use crate::entry::NO_PREV;
use crate::hash::StateKey;

/// Default segment size: 256 KiB — large enough that NEXMark's ~300-byte
/// records never straddle, small enough to reclaim promptly.
pub const DEFAULT_SEGMENT_SIZE: usize = 256 * 1024;

struct Segment {
    data: Box<[u8]>,
    /// Bytes of valid entries; parsing stops here.
    used: usize,
    /// Entries not yet marked dead.
    live: u32,
    /// Sealed segments accept no more appends.
    sealed: bool,
}

impl Segment {
    fn new(size: usize) -> Self {
        Segment {
            data: vec![0u8; size].into_boxed_slice(),
            used: 0,
            live: 0,
            sealed: false,
        }
    }
}

/// Segmented log-structured storage.
pub struct Lss {
    segments: VecDeque<Segment>,
    seg_size: usize,
    /// Logical address of `segments[0]`'s first byte.
    first_start: u64,
    /// Logical tail: where the next entry will be written.
    tail: u64,
    /// Total live entries (diagnostics).
    live_entries: u64,
    /// Cumulative appended bytes (stats).
    appended_bytes: u64,
}

impl Lss {
    /// Create an empty log with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_size(DEFAULT_SEGMENT_SIZE)
    }

    /// Create an empty log with a custom segment size (tests use small
    /// segments to exercise sealing and reclamation).
    pub fn with_segment_size(seg_size: usize) -> Self {
        assert!(seg_size >= HEADER_SIZE + 8, "segment too small");
        Lss {
            segments: VecDeque::new(),
            seg_size,
            first_start: 0,
            tail: 0,
            live_entries: 0,
            appended_bytes: 0,
        }
    }

    /// Logical tail address (== address of the next append).
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Logical address below which no entries exist anymore.
    pub fn head(&self) -> u64 {
        self.first_start
    }

    /// Number of live (not-yet-dead) entries.
    pub fn live_entries(&self) -> u64 {
        self.live_entries
    }

    /// Bytes of segment memory currently held.
    pub fn resident_bytes(&self) -> usize {
        self.segments.len() * self.seg_size
    }

    /// Cumulative bytes appended over the log's lifetime.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    fn seg_of(&self, addr: u64) -> (usize, usize) {
        debug_assert!(addr >= self.first_start, "address below head");
        let rel = (addr - self.first_start) as usize;
        (rel / self.seg_size, rel % self.seg_size)
    }

    /// Append an entry; returns its logical address.
    pub fn append(
        &mut self,
        key: StateKey,
        prev: u64,
        kind: EntryKind,
        value: &[u8],
    ) -> u64 {
        let need = stored_size(value.len());
        assert!(
            need <= self.seg_size,
            "entry of {need} bytes exceeds segment size {}",
            self.seg_size
        );
        // Seal the current segment if the entry does not fit.
        let tail_off = ((self.tail - self.first_start) as usize) % self.seg_size;
        let in_last =
            !self.segments.is_empty() && self.seg_of(self.tail).0 == self.segments.len() - 1;
        if !in_last || self.seg_size - tail_off < need {
            if let Some(last) = self.segments.back_mut() {
                last.sealed = true;
            }
            // Jump the tail to the next segment boundary.
            let next_boundary = self.first_start + (self.segments.len() * self.seg_size) as u64;
            self.tail = next_boundary;
            self.segments.push_back(Segment::new(self.seg_size));
        }
        let addr = self.tail;
        let (si, off) = self.seg_of(addr);
        let seg = &mut self.segments[si];
        EntryHeader {
            key,
            prev,
            len: value.len() as u32,
            kind,
        }
        .encode(&mut seg.data[off..off + HEADER_SIZE]);
        seg.data[off + HEADER_SIZE..off + HEADER_SIZE + value.len()].copy_from_slice(value);
        seg.used = off + need;
        seg.live += 1;
        self.live_entries += 1;
        self.appended_bytes += need as u64;
        self.tail += need as u64;
        addr
    }

    /// Decode the header of the entry at `addr`.
    pub fn header(&self, addr: u64) -> EntryHeader {
        let (si, off) = self.seg_of(addr);
        EntryHeader::decode(&self.segments[si].data[off..off + HEADER_SIZE])
    }

    /// The key stored at `addr` (index verification path).
    pub fn key_at(&self, addr: u64) -> StateKey {
        self.header(addr).key
    }

    /// Immutable view of the value at `addr`.
    pub fn value(&self, addr: u64) -> &[u8] {
        let (si, off) = self.seg_of(addr);
        let h = EntryHeader::decode(&self.segments[si].data[off..off + HEADER_SIZE]);
        &self.segments[si].data[off + HEADER_SIZE..off + HEADER_SIZE + h.len as usize]
    }

    /// Mutable view of the value at `addr` (in-place RMW; callers must only
    /// do this inside the mutable region — the partition enforces it).
    pub fn value_mut(&mut self, addr: u64) -> &mut [u8] {
        let (si, off) = self.seg_of(addr);
        let h = EntryHeader::decode(&self.segments[si].data[off..off + HEADER_SIZE]);
        &mut self.segments[si].data[off + HEADER_SIZE..off + HEADER_SIZE + h.len as usize]
    }

    /// Visit every entry with address in `[from, to)` in log order.
    pub fn for_each_in(&self, from: u64, to: u64, mut f: impl FnMut(u64, &EntryHeader, &[u8])) {
        let mut addr = from.max(self.first_start);
        let to = to.min(self.tail);
        while addr < to {
            let (si, off) = self.seg_of(addr);
            let seg = &self.segments[si];
            if off >= seg.used {
                // Padding at segment end: skip to the next boundary.
                addr = self.first_start + ((si as u64 + 1) * self.seg_size as u64);
                continue;
            }
            let h = EntryHeader::decode(&seg.data[off..off + HEADER_SIZE]);
            let val = &seg.data[off + HEADER_SIZE..off + HEADER_SIZE + h.len as usize];
            f(addr, &h, val);
            addr += stored_size(h.len as usize) as u64;
        }
    }

    /// Mark the entry at `addr` dead. Dead entries free their segment once
    /// every entry in it is dead.
    pub fn note_dead(&mut self, addr: u64) {
        let (si, _) = self.seg_of(addr);
        let seg = &mut self.segments[si];
        assert!(seg.live > 0, "double free at {addr}");
        seg.live -= 1;
        self.live_entries -= 1;
    }

    /// Mark *all* entries currently in the log dead (helper fragments after
    /// a full delta ship).
    pub fn kill_all(&mut self) {
        for seg in &mut self.segments {
            self.live_entries -= seg.live as u64;
            seg.live = 0;
        }
    }

    /// Free fully-dead sealed segments from the head; returns how many
    /// segments were reclaimed.
    pub fn reclaim(&mut self) -> usize {
        let mut n = 0;
        while let Some(front) = self.segments.front() {
            if front.live == 0 && front.sealed {
                self.segments.pop_front();
                self.first_start += self.seg_size as u64;
                n += 1;
            } else {
                break;
            }
        }
        n
    }
}

impl Default for Lss {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Lss {
        Lss::with_segment_size(128) // 4 minimal entries per segment
    }

    #[test]
    fn append_and_read_back() {
        let mut l = Lss::new();
        let a0 = l.append(7, NO_PREV, EntryKind::Fixed, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let a1 = l.append(9, a0, EntryKind::Appended, b"hello");
        assert_eq!(l.value(a0), &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(l.value(a1), b"hello");
        let h1 = l.header(a1);
        assert_eq!(h1.key, 9);
        assert_eq!(h1.prev, a0);
        assert_eq!(h1.kind, EntryKind::Appended);
        assert_eq!(l.key_at(a0), 7);
        assert_eq!(l.live_entries(), 2);
    }

    #[test]
    fn in_place_update() {
        let mut l = Lss::new();
        let a = l.append(1, NO_PREV, EntryKind::Fixed, &0u64.to_le_bytes());
        l.value_mut(a).copy_from_slice(&42u64.to_le_bytes());
        assert_eq!(l.value(a), &42u64.to_le_bytes());
    }

    #[test]
    fn segments_seal_and_addresses_skip_padding() {
        let mut l = small();
        // 40-byte entries: 3 fit in a 128-byte segment (120), 8 bytes pad.
        let addrs: Vec<u64> = (0..7)
            .map(|i| l.append(i, NO_PREV, EntryKind::Fixed, &[0u8; 8]))
            .collect();
        assert_eq!(addrs[0], 0);
        assert_eq!(addrs[1], 40);
        assert_eq!(addrs[2], 80);
        assert_eq!(addrs[3], 128, "skips the 8-byte pad");
        assert_eq!(addrs[6], 256, "first entry of the third segment");
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(l.key_at(a), i as u128);
        }
    }

    #[test]
    fn for_each_in_visits_ranges_in_order() {
        let mut l = small();
        let addrs: Vec<u64> = (0..10u64)
            .map(|i| l.append(i as u128, NO_PREV, EntryKind::Fixed, &i.to_le_bytes()))
            .collect();
        let mut seen = Vec::new();
        l.for_each_in(0, l.tail(), |addr, h, v| {
            seen.push((addr, h.key, u64::from_le_bytes(v.try_into().unwrap())));
        });
        assert_eq!(seen.len(), 10);
        for (i, (addr, key, val)) in seen.iter().enumerate() {
            assert_eq!(*addr, addrs[i]);
            assert_eq!(*key, i as u128);
            assert_eq!(*val, i as u64);
        }
        // Partial range starting at a valid entry boundary.
        let mut partial = Vec::new();
        l.for_each_in(addrs[4], l.tail(), |_, h, _| partial.push(h.key));
        assert_eq!(partial, (4u128..10).collect::<Vec<_>>());
    }

    #[test]
    fn reclaim_frees_dead_sealed_segments() {
        let mut l = small();
        let addrs: Vec<u64> = (0..9)
            .map(|i| l.append(i, NO_PREV, EntryKind::Fixed, &[0u8; 8]))
            .collect();
        assert_eq!(l.resident_bytes(), 3 * 128);
        // Kill the first segment's entries only.
        for &a in &addrs[0..3] {
            l.note_dead(a);
        }
        assert_eq!(l.reclaim(), 1);
        assert_eq!(l.head(), 128);
        assert_eq!(l.resident_bytes(), 2 * 128);
        // Remaining entries still readable.
        assert_eq!(l.key_at(addrs[3]), 3);
        // Killing out of order does not reclaim until the head is dead.
        for &a in &addrs[6..9] {
            l.note_dead(a);
        }
        assert_eq!(l.reclaim(), 0);
        for &a in &addrs[3..6] {
            l.note_dead(a);
        }
        // Tail segment is unsealed, so only the sealed middle one frees.
        assert_eq!(l.reclaim(), 1);
        assert_eq!(l.live_entries(), 0);
    }

    #[test]
    fn kill_all_then_reclaim_keeps_only_tail_segment() {
        let mut l = small();
        for i in 0..9u64 {
            l.append(i as u128, NO_PREV, EntryKind::Fixed, &[0u8; 8]);
        }
        let tail = l.tail();
        l.kill_all();
        l.reclaim();
        assert_eq!(l.resident_bytes(), 128, "only the open tail segment");
        assert_eq!(l.tail(), tail, "tail address is never rewound");
        // Appends continue seamlessly.
        let a = l.append(99, NO_PREV, EntryKind::Fixed, &[0u8; 8]);
        assert_eq!(l.key_at(a), 99);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = Lss::new();
        l.append(1, NO_PREV, EntryKind::Fixed, &[0u8; 8]);
        l.append(2, NO_PREV, EntryKind::Fixed, &[0u8; 16]);
        assert_eq!(l.appended_bytes(), 40 + 48);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_is_a_bug() {
        let mut l = Lss::new();
        let a = l.append(1, NO_PREV, EntryKind::Fixed, &[0u8; 8]);
        l.note_dead(a);
        l.note_dead(a);
    }
}
