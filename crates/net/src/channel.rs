//! Channel setup (the protocol's *setup phase*, paper §6.2).

use slash_desim::SimTime;
use slash_rdma::{CqHandle, Fabric, NodeId};

use crate::layout::FOOTER_SIZE;
use crate::receiver::ChannelReceiver;
use crate::sender::ChannelSender;

/// Channel parameters fixed for the lifetime of a query (the paper keeps
/// `c` constant during execution because its choice is hardware-sensitive
/// and sets the pipelining depth).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelConfig {
    /// Number of slots in the circular queue == initial credits == maximum
    /// pipelining depth. The paper finds `c = 8` best on its testbed.
    pub credits: usize,
    /// Size of one slot in bytes, including the 16-byte footer. The paper
    /// sweeps 4 KiB – 4 MiB and settles on 64 KiB as the throughput sweet
    /// spot (Fig. 8a).
    pub buffer_size: usize,
    /// Return credit every `credit_batch` consumed buffers (1 = per-buffer,
    /// as in the paper's description).
    pub credit_batch: usize,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            credits: 8,
            buffer_size: 64 * 1024,
            credit_batch: 1,
        }
    }
}

impl ChannelConfig {
    /// Validate invariants; panics on nonsense configurations (these are
    /// build-time decisions, not runtime data).
    pub fn validated(self) -> Self {
        assert!(self.credits >= 1, "need at least one credit");
        assert!(
            self.buffer_size > FOOTER_SIZE,
            "buffer must fit payload + footer"
        );
        assert!(self.credit_batch >= 1);
        assert!(
            self.credit_batch <= self.credits,
            "batching credits beyond the queue depth deadlocks the channel"
        );
        self
    }

    /// Payload capacity per buffer.
    pub fn payload_capacity(&self) -> usize {
        self.buffer_size - FOOTER_SIZE
    }
}

/// Create a unidirectional RDMA channel from `producer` to `consumer`.
///
/// Allocates the consumer-side ring (`c × m` bytes, flat layout), a
/// mirrored producer-side staging ring, the producer's credit counter, and
/// a reliable QP connecting the two nodes.
pub fn create_channel(
    fabric: &Fabric,
    producer: NodeId,
    consumer: NodeId,
    cfg: ChannelConfig,
) -> (ChannelSender, ChannelReceiver) {
    let cfg = cfg.validated();
    let ring_len = cfg.credits * cfg.buffer_size;

    let staging = fabric.register(producer, ring_len);
    let credit = fabric.register(producer, 8);
    let ring = fabric.register(consumer, ring_len);
    let credit_staging = fabric.register(consumer, 8);

    let (qp_p, qp_c) = fabric.connect(
        producer,
        CqHandle::new(),
        CqHandle::new(),
        consumer,
        CqHandle::new(),
        CqHandle::new(),
    );

    let sender = ChannelSender::new(qp_p, staging, ring.remote_key(), credit, cfg);
    let receiver =
        ChannelReceiver::new(qp_c, ring, sender.credit_remote_key(), credit_staging, cfg);
    (sender, receiver)
}

/// Suggested per-poll CPU cost when a poll comes up empty (the `pause`
/// spin the paper's micro-architecture analysis attributes to core-bound
/// stalls). Engines charge this to their virtual CPU.
pub const EMPTY_POLL_COST: SimTime = SimTime::from_nanos(8);

/// Control-plane messages exchanged to bring a *replacement* channel to
/// ready-to-send during recovery: connect request, queue-pair attribute
/// exchange (the INIT→RTR→RTS analog), and the commit-horizon handshake
/// that tells the producer which epoch to resume replay from. Recovery
/// drivers charge this many wire round trips before a re-established
/// channel set may carry deltas — channel *creation* itself is free in the
/// model (registration is local), so this constant is where reconnect
/// latency lives.
pub const RECONNECT_HANDSHAKE_MSGS: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::MsgFlags;
    use slash_desim::Sim;
    use slash_rdma::FabricConfig;

    fn setup(cfg: ChannelConfig) -> (Sim, ChannelSender, ChannelReceiver) {
        let sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let (tx, rx) = create_channel(&fabric, a, b, cfg);
        (sim, tx, rx)
    }

    #[test]
    fn single_buffer_roundtrip() {
        let (mut sim, mut tx, mut rx) = setup(ChannelConfig::default());
        assert!(tx
            .try_send(&mut sim, MsgFlags::DATA, b"records go here")
            .unwrap());
        assert!(rx.try_recv(&mut sim).unwrap().is_none(), "not delivered yet");
        sim.run();
        let (flags, data) = rx.try_recv(&mut sim).unwrap().expect("delivered");
        assert_eq!(flags, MsgFlags::DATA);
        assert_eq!(data, b"records go here");
    }

    #[test]
    fn fifo_order_over_many_wraps() {
        let cfg = ChannelConfig {
            credits: 4,
            buffer_size: 64,
            credit_batch: 1,
        };
        let (mut sim, mut tx, mut rx) = setup(cfg);
        let total = 100u64;
        let mut sent = 0u64;
        let mut got = Vec::new();
        while (got.len() as u64) < total {
            while sent < total
                && tx
                    .try_send(&mut sim, MsgFlags::DATA, &sent.to_le_bytes())
                    .unwrap()
            {
                sent += 1;
            }
            sim.run();
            while let Some((_, data)) = rx.try_recv(&mut sim).unwrap() {
                got.push(u64::from_le_bytes(data.try_into().unwrap()));
            }
            sim.run();
        }
        let expect: Vec<u64> = (0..total).collect();
        assert_eq!(got, expect, "FIFO delivery across wrap-arounds");
    }

    #[test]
    fn producer_stalls_at_zero_credits() {
        let cfg = ChannelConfig {
            credits: 2,
            buffer_size: 64,
            credit_batch: 1,
        };
        let (mut sim, mut tx, mut rx) = setup(cfg);
        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"a").unwrap());
        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"b").unwrap());
        // Third send must fail: no credit, consumer hasn't processed.
        assert!(!tx.try_send(&mut sim, MsgFlags::DATA, b"c").unwrap());
        assert_eq!(tx.stats.credit_stalls, 1);
        sim.run();
        // Consume one buffer; its credit must re-enable the producer.
        assert!(rx.try_recv(&mut sim).unwrap().is_some());
        sim.run();
        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"c").unwrap());
    }

    #[test]
    fn unread_buffers_are_never_overwritten() {
        let cfg = ChannelConfig {
            credits: 2,
            buffer_size: 64,
            credit_batch: 1,
        };
        let (mut sim, mut tx, mut rx) = setup(cfg);
        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"first").unwrap());
        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"sixth").unwrap());
        sim.run();
        // Producer wants to send more but must not clobber slot 0.
        for _ in 0..10 {
            assert!(!tx.try_send(&mut sim, MsgFlags::DATA, b"evil!").unwrap());
        }
        sim.run();
        let (_, d0) = rx.try_recv(&mut sim).unwrap().unwrap();
        assert_eq!(d0, b"first");
        let (_, d1) = rx.try_recv(&mut sim).unwrap().unwrap();
        assert_eq!(d1, b"sixth");
    }

    #[test]
    fn eos_terminates_the_stream() {
        let (mut sim, mut tx, mut rx) = setup(ChannelConfig::default());
        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"last data").unwrap());
        assert!(tx.try_send_eos(&mut sim).unwrap());
        assert!(tx.eos_sent());
        sim.run();
        assert!(rx.try_recv(&mut sim).unwrap().is_some());
        assert!(!rx.eos());
        let (flags, data) = rx.try_recv(&mut sim).unwrap().unwrap();
        assert!(flags.contains(MsgFlags::EOS));
        assert!(data.is_empty());
        assert!(rx.eos());
    }

    #[test]
    fn credit_batching_reduces_credit_messages() {
        let mk = |batch| {
            let cfg = ChannelConfig {
                credits: 8,
                buffer_size: 64,
                credit_batch: batch,
            };
            let (mut sim, mut tx, mut rx) = setup(cfg);
            let mut sent = 0;
            while sent < 64 {
                while sent < 64 && tx.try_send(&mut sim, MsgFlags::DATA, b"x").unwrap() {
                    sent += 1;
                }
                sim.run();
                while rx.try_recv(&mut sim).unwrap().is_some() {}
                sim.run();
            }
            rx.stats.credit_msgs
        };
        let per_buffer = mk(1);
        let batched = mk(4);
        assert_eq!(per_buffer, 64);
        assert!(batched <= per_buffer / 3, "batched={batched}");
    }

    #[test]
    fn latency_is_measured() {
        let (mut sim, mut tx, mut rx) = setup(ChannelConfig::default());
        tx.try_send(&mut sim, MsgFlags::DATA, &vec![0u8; 4096]).unwrap();
        sim.run();
        rx.try_recv(&mut sim).unwrap().unwrap();
        assert_eq!(rx.stats.latency_samples(), 1);
        // 4 KiB at ~11.8 GB/s + 600ns latency: about 1µs.
        let lat = rx.stats.mean_latency().unwrap();
        assert!(lat.as_nanos() >= 1_000, "{lat}");
        assert!(lat.as_nanos() < 1_000_000, "{lat}");
    }

    #[test]
    fn reset_reestablishes_channel_after_link_flap() {
        let mut sim = Sim::new();
        let fabric = Fabric::new(FabricConfig::default());
        let a = fabric.add_node();
        let b = fabric.add_node();
        let (mut tx, mut rx) = create_channel(&fabric, a, b, ChannelConfig::default());

        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"before").unwrap());
        sim.run();
        assert_eq!(rx.try_recv(&mut sim).unwrap().unwrap().1, b"before");
        sim.run();

        // Link goes down; the next send is flushed and errors the QP.
        fabric.set_link_down(b, true);
        let _ = tx.try_send(&mut sim, MsgFlags::DATA, b"lost");
        sim.run();
        assert!(tx.is_error(), "post over a dead link errors the QP");
        assert!(matches!(
            tx.try_send(&mut sim, MsgFlags::DATA, b"rejected"),
            Err(slash_rdma::RdmaError::QpError)
        ));

        // Link restored: both endpoints reset, sequence + credit rewound.
        fabric.set_link_down(b, false);
        tx.reset();
        rx.reset();
        assert!(!tx.is_error());
        assert_eq!(tx.next_seq(), 0);
        assert_eq!(rx.next_seq(), 0);

        assert!(tx.try_send(&mut sim, MsgFlags::DATA, b"after").unwrap());
        sim.run();
        assert_eq!(rx.try_recv(&mut sim).unwrap().unwrap().1, b"after");
    }

    #[test]
    #[should_panic(expected = "deadlocks")]
    fn overbatching_credits_is_rejected() {
        ChannelConfig {
            credits: 2,
            buffer_size: 64,
            credit_batch: 4,
        }
        .validated();
    }
}
