//! A partition fragment: hash index + log + epoch boundary.
//!
//! Every node holds one `Partition` object per SSB partition: the one it
//! leads (its *primary* partition, where deltas from helpers are merged and
//! windows trigger) and a *fragment* of every remote partition (where its
//! own eager updates accumulate between epochs).

use crate::descriptor::{StateDescriptor, ValueKind};
use crate::entry::{EntryHeader, EntryKind, NO_PREV};
use crate::hash::{hash_key, StateKey};
use crate::index::HashIndex;
use crate::log::Lss;

/// Operation counters (feed the micro-architecture proxies of §8.3).
#[derive(Debug, Default, Clone, Copy)]
pub struct PartitionStats {
    /// In-place read-modify-writes served.
    pub rmw_hits: u64,
    /// RMWs that created a fresh key (zero-value insert).
    pub rmw_inserts: u64,
    /// Elements appended to holistic state.
    pub appends: u64,
    /// Entries merged in from helper deltas.
    pub merged_entries: u64,
    /// Epochs closed on this fragment.
    pub epochs: u64,
}

/// One partition's local storage on one node.
pub struct Partition {
    /// Partition id within the SSB.
    pub id: usize,
    index: HashIndex,
    log: Lss,
    /// Entries below this address are read-only/invalidated (shipped).
    epoch_begin: u64,
    /// Epoch counter, versioning the fragment's content (§7.2.2 step ①).
    epoch: u64,
    desc: StateDescriptor,
    /// Operation counters.
    pub stats: PartitionStats,
}

impl Partition {
    /// Create an empty partition fragment.
    pub fn new(id: usize, desc: StateDescriptor) -> Self {
        Partition {
            id,
            index: HashIndex::new(),
            log: Lss::new(),
            epoch_begin: 0,
            epoch: 0,
            desc,
            stats: PartitionStats::default(),
        }
    }

    /// Test/bench constructor with a custom segment size.
    pub fn with_segment_size(id: usize, desc: StateDescriptor, seg: usize) -> Self {
        Partition {
            id,
            index: HashIndex::new(),
            log: Lss::with_segment_size(seg),
            epoch_begin: 0,
            epoch: 0,
            desc,
            stats: PartitionStats::default(),
        }
    }

    /// The state descriptor.
    pub fn descriptor(&self) -> &StateDescriptor {
        &self.desc
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of distinct live keys.
    pub fn key_count(&self) -> usize {
        self.index.len()
    }

    /// Resident log bytes (capacity planning / adaptive sizing stats).
    pub fn resident_bytes(&self) -> usize {
        self.log.resident_bytes()
    }

    fn find(&self, key: StateKey) -> Option<u64> {
        let log = &self.log;
        self.index.find(hash_key(key), |addr| log.key_at(addr) == key)
    }

    /// Read-modify-write of fixed-size state: the hot path of every
    /// non-holistic windowed aggregation. `update` sees the current value
    /// (CRDT zero for fresh keys) and mutates it in place.
    pub fn rmw(&mut self, key: StateKey, update: impl FnOnce(&mut [u8])) {
        debug_assert!(
            matches!(self.desc.kind, ValueKind::Fixed { .. }),
            "rmw on appended state"
        );
        if let Some(addr) = self.find(key) {
            debug_assert!(
                addr >= self.epoch_begin,
                "index points into the invalidated region"
            );
            update(self.log.value_mut(addr));
            self.stats.rmw_hits += 1;
        } else {
            let size = self.desc.fixed_size();
            let mut buf = vec![0u8; size];
            (self.desc.init)(&mut buf);
            update(&mut buf);
            self.insert_fresh(key, EntryKind::Fixed, &buf);
            self.stats.rmw_inserts += 1;
        }
    }

    /// Append one element to holistic state (hash-join build, §5.2).
    pub fn append(&mut self, key: StateKey, elem: &[u8]) {
        debug_assert!(self.desc.is_appended(), "append on fixed state");
        let prev = self.find(key).unwrap_or(NO_PREV);
        let addr = self.log.append(key, prev, EntryKind::Appended, elem);
        let log = &self.log;
        self.index.upsert(
            hash_key(key),
            addr,
            |a| log.key_at(a) == key,
            |a| hash_key(log.key_at(a)),
        );
        self.stats.appends += 1;
    }

    fn insert_fresh(&mut self, key: StateKey, kind: EntryKind, value: &[u8]) {
        let addr = self.log.append(key, NO_PREV, kind, value);
        let log = &self.log;
        self.index.upsert(
            hash_key(key),
            addr,
            |a| log.key_at(a) == key,
            |a| hash_key(log.key_at(a)),
        );
    }

    /// Merge a value into fixed-size state with the descriptor's CRDT
    /// merge (leader-side delta replay).
    pub fn merge_fixed(&mut self, key: StateKey, src: &[u8]) {
        let merge = self.desc.merge;
        self.rmw(key, |dst| merge(dst, src));
        self.stats.merged_entries += 1;
    }

    /// Read fixed-size state.
    pub fn get(&self, key: StateKey) -> Option<&[u8]> {
        self.find(key).map(|addr| self.log.value(addr))
    }

    /// Visit every element of a holistic key's chain (newest first).
    pub fn for_each_element(&self, key: StateKey, mut f: impl FnMut(&[u8])) {
        let mut addr = match self.find(key) {
            Some(a) => a,
            None => return,
        };
        loop {
            let h = self.log.header(addr);
            f(self.log.value(addr));
            if h.prev == NO_PREV || h.prev < self.epoch_begin {
                break;
            }
            addr = h.prev;
        }
    }

    /// Number of elements in a holistic key's chain.
    pub fn element_count(&self, key: StateKey) -> usize {
        let mut n = 0;
        self.for_each_element(key, |_| n += 1);
        n
    }

    /// Visit every live key with the address of its newest entry.
    pub fn for_each_key(&self, mut f: impl FnMut(StateKey, u64)) {
        let log = &self.log;
        self.index.for_each(|addr| f(log.key_at(addr), addr));
    }

    /// Close the current epoch (§7.2.2 steps ①–④ minus the wire transfer):
    /// visit every entry written since the previous boundary — the delta —
    /// then invalidate the shipped region so future RMWs restart from the
    /// CRDT zero value, and reclaim its memory. Returns the epoch number
    /// that was closed.
    pub fn close_epoch(&mut self, mut visit: impl FnMut(&EntryHeader, &[u8])) -> u64 {
        let closed = self.epoch;
        self.log
            .for_each_in(self.epoch_begin, self.log.tail(), |_, h, v| visit(h, v));
        // Invalidate: every index entry points into [epoch_begin, tail)
        // (older regions were invalidated by previous epochs), so the whole
        // index goes; all log entries die and sealed segments are freed.
        self.index.clear();
        self.log.kill_all();
        self.log.reclaim();
        self.epoch_begin = self.log.tail();
        self.epoch += 1;
        self.stats.epochs += 1;
        closed
    }

    /// Fast-forward the epoch counter to at least `epoch` (crash recovery).
    ///
    /// A promoted replacement node restarts with fresh fragments but must
    /// not reuse epoch ids its predecessor already shipped: receivers
    /// deduplicate replayed epochs by id, so a reused id would be silently
    /// discarded. Called once after restore, before any new epoch closes.
    pub fn resume_at_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
        }
    }

    /// Whether this fragment has accumulated updates in the open epoch.
    pub fn is_dirty(&self) -> bool {
        self.log.tail() > self.epoch_begin
    }

    /// Size in bytes of the open epoch's delta.
    pub fn dirty_bytes(&self) -> u64 {
        self.log.tail() - self.epoch_begin
    }

    /// Remove a key and mark its entries dead (window GC after trigger).
    pub fn remove(&mut self, key: StateKey) -> bool {
        let log = &self.log;
        let removed = self
            .index
            .remove(hash_key(key), |a| log.key_at(a) == key);
        match removed {
            Some(mut addr) => {
                loop {
                    let h = self.log.header(addr);
                    self.log.note_dead(addr);
                    if h.prev == NO_PREV || h.prev < self.epoch_begin {
                        break;
                    }
                    addr = h.prev;
                }
                self.log.reclaim();
                true
            }
            None => false,
        }
    }
}

impl std::fmt::Debug for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Partition")
            .field("id", &self.id)
            .field("epoch", &self.epoch)
            .field("keys", &self.index.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crdts::CounterCrdt;
    use crate::descriptor::appended_descriptor;

    fn counter_part() -> Partition {
        Partition::with_segment_size(0, CounterCrdt::descriptor(), 256)
    }

    #[test]
    fn rmw_creates_then_updates_in_place() {
        let mut p = counter_part();
        p.rmw(5, |v| CounterCrdt::add(v, 3));
        p.rmw(5, |v| CounterCrdt::add(v, 4));
        assert_eq!(p.get(5).map(CounterCrdt::get), Some(7));
        assert_eq!(p.stats.rmw_inserts, 1);
        assert_eq!(p.stats.rmw_hits, 1);
        assert_eq!(p.key_count(), 1);
    }

    #[test]
    fn many_keys_roundtrip() {
        let mut p = counter_part();
        for k in 0..5000u128 {
            p.rmw(k, |v| CounterCrdt::add(v, k as u64));
        }
        for k in (0..5000u128).rev() {
            assert_eq!(p.get(k).map(CounterCrdt::get), Some(k as u64), "key {k}");
        }
        assert_eq!(p.get(5001), None);
    }

    #[test]
    fn close_epoch_ships_delta_and_resets_state() {
        let mut p = counter_part();
        p.rmw(1, |v| CounterCrdt::add(v, 10));
        p.rmw(2, |v| CounterCrdt::add(v, 20));
        assert!(p.is_dirty());

        let mut shipped = Vec::new();
        let closed = p.close_epoch(|h, v| shipped.push((h.key, CounterCrdt::get(v))));
        assert_eq!(closed, 0);
        assert_eq!(p.epoch(), 1);
        shipped.sort();
        assert_eq!(shipped, vec![(1, 10), (2, 20)]);

        // Post-epoch: RMWs restart from the CRDT zero value (paper §7.2.2:
        // "discarding transferred content is safe, as RMW operations
        // restart from a zero value").
        assert!(!p.is_dirty());
        assert_eq!(p.get(1), None);
        p.rmw(1, |v| CounterCrdt::add(v, 5));
        assert_eq!(p.get(1).map(CounterCrdt::get), Some(5));

        let mut shipped2 = Vec::new();
        p.close_epoch(|h, v| shipped2.push((h.key, CounterCrdt::get(v))));
        assert_eq!(shipped2, vec![(1, 5)], "only the new delta ships");
    }

    #[test]
    fn close_epoch_reclaims_memory() {
        let mut p = counter_part();
        for k in 0..1000u128 {
            p.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        let resident_before = p.resident_bytes();
        p.close_epoch(|_, _| {});
        assert!(
            p.resident_bytes() < resident_before / 2,
            "epoch close must free shipped segments: {} -> {}",
            resident_before,
            p.resident_bytes()
        );
    }

    #[test]
    fn append_chains_and_iterates_newest_first() {
        let mut p = Partition::with_segment_size(0, appended_descriptor(), 512);
        p.append(9, b"one");
        p.append(9, b"two");
        p.append(9, b"three");
        p.append(8, b"other");
        let mut got = Vec::new();
        p.for_each_element(9, |e| got.push(e.to_vec()));
        assert_eq!(got, vec![b"three".to_vec(), b"two".to_vec(), b"one".to_vec()]);
        assert_eq!(p.element_count(9), 3);
        assert_eq!(p.element_count(8), 1);
        assert_eq!(p.element_count(7), 0);
    }

    #[test]
    fn appended_delta_ships_every_element() {
        let mut p = Partition::with_segment_size(0, appended_descriptor(), 512);
        p.append(1, b"a");
        p.append(1, b"b");
        p.append(2, b"c");
        let mut shipped = Vec::new();
        p.close_epoch(|h, v| shipped.push((h.key, v.to_vec())));
        assert_eq!(shipped.len(), 3);
        assert!(shipped.contains(&(1, b"a".to_vec())));
        assert!(shipped.contains(&(1, b"b".to_vec())));
        assert!(shipped.contains(&(2, b"c".to_vec())));
        // Chains restart cleanly after invalidation.
        p.append(1, b"d");
        assert_eq!(p.element_count(1), 1);
    }

    #[test]
    fn merge_fixed_applies_crdt_merge() {
        let mut p = counter_part();
        p.rmw(1, |v| CounterCrdt::add(v, 10));
        p.merge_fixed(1, &32u64.to_le_bytes());
        assert_eq!(p.get(1).map(CounterCrdt::get), Some(42));
        p.merge_fixed(2, &7u64.to_le_bytes());
        assert_eq!(p.get(2).map(CounterCrdt::get), Some(7));
    }

    #[test]
    fn remove_frees_key_and_chain() {
        let mut p = Partition::with_segment_size(0, appended_descriptor(), 256);
        for i in 0..20u64 {
            p.append(1, &i.to_le_bytes());
        }
        p.append(2, b"keep");
        assert!(p.remove(1));
        assert!(!p.remove(1));
        assert_eq!(p.element_count(1), 0);
        assert_eq!(p.element_count(2), 1);
        assert_eq!(p.key_count(), 1);
    }

    #[test]
    fn for_each_key_visits_live_keys() {
        let mut p = counter_part();
        for k in 0..10u128 {
            p.rmw(k, |v| CounterCrdt::add(v, 1));
        }
        p.remove(3);
        let mut keys = Vec::new();
        p.for_each_key(|k, _| keys.push(k));
        keys.sort();
        let expect: Vec<u128> = (0..10).filter(|&k| k != 3).collect();
        assert_eq!(keys, expect);
    }
}
